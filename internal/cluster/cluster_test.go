package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"rldecide/internal/power"
)

func flat() power.Curve {
	return power.MustCurve([]power.Point{{Util: 0, Watts: 10}, {Util: 1, Watts: 42}})
}

func newSim(nodes, cores int) *Sim {
	return New(Config{Nodes: nodes, CoresPerNode: cores, LinkBandwidth: 125e6, LinkLatency: 1e-4, CPU: flat()})
}

func TestRunAdvancesClockAndEnergy(t *testing.T) {
	s := newSim(1, 4)
	s.Run(0, 4, 100)
	if s.Time() != 100 {
		t.Fatalf("Time=%v want 100", s.Time())
	}
	if e := s.Energy(); math.Abs(e-4200) > 1e-9 {
		t.Fatalf("Energy=%v want 4200 (42W x 100s)", e)
	}
	if u := s.Utilization(0); math.Abs(u-1) > 1e-12 {
		t.Fatalf("Utilization=%v want 1", u)
	}
}

func TestPartialUtilization(t *testing.T) {
	s := newSim(1, 4)
	s.Run(0, 2, 100)
	// 10 + 32*(0.5) = 26 W on the linear curve.
	if e := s.Energy(); math.Abs(e-2600) > 1e-9 {
		t.Fatalf("Energy=%v want 2600", e)
	}
	if u := s.Utilization(0); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("util %v", u)
	}
}

func TestRunParallelWallTime(t *testing.T) {
	s := newSim(1, 4)
	wall := s.RunParallel(0, 4, 400) // 400 core-seconds over 4 cores
	if wall != 100 || s.Time() != 100 {
		t.Fatalf("wall=%v time=%v want 100", wall, s.Time())
	}
	// Over-subscription is capped at node size.
	s2 := newSim(1, 2)
	wall2 := s2.RunParallel(0, 8, 100)
	if wall2 != 50 {
		t.Fatalf("capped wall=%v want 50", wall2)
	}
}

func TestIdleDrawDoublesWithNodes(t *testing.T) {
	// Same work on 1 vs 2 nodes: the second node burns idle power,
	// reproducing the paper's observation that multi-node deployments pay
	// an energy floor.
	oneNode := newSim(1, 4)
	oneNode.Run(0, 4, 100)
	twoNodes := newSim(2, 4)
	twoNodes.Run(0, 4, 100)
	d := twoNodes.Energy() - oneNode.Energy()
	if math.Abs(d-1000) > 1e-9 { // 10 W idle x 100 s
		t.Fatalf("idle delta=%v want 1000", d)
	}
}

func TestTransferTiming(t *testing.T) {
	s := newSim(2, 4)
	d := s.Transfer(0, 1, 125_000_000) // 1 s at 1 Gbps
	if math.Abs(d-1.0001) > 1e-9 {
		t.Fatalf("transfer duration=%v want 1.0001", d)
	}
	if math.Abs(s.Clock(0)-s.Clock(1)) > 1e-12 {
		t.Fatal("transfer must synchronize both endpoints")
	}
	if s.Transfer(0, 0, 1000) != 0 {
		t.Fatal("intra-node transfer should be free")
	}
}

func TestTransferWaitsForLaggard(t *testing.T) {
	s := newSim(2, 4)
	s.Run(0, 4, 10) // node 0 at t=10, node 1 at t=0
	s.Transfer(0, 1, 0)
	if s.Clock(1) < 10 {
		t.Fatalf("dst should have idled to t=10, got %v", s.Clock(1))
	}
}

func TestBarrierIdlesLaggards(t *testing.T) {
	s := newSim(2, 4)
	s.Run(0, 4, 100)
	tb := s.Barrier()
	if tb != 100 || s.Clock(1) != 100 {
		t.Fatalf("barrier=%v clock1=%v", tb, s.Clock(1))
	}
	// node 1 idled 100 s at 10 W; node 0 ran 100 s at 42 W.
	if e := s.Energy(); math.Abs(e-5200) > 1e-9 {
		t.Fatalf("Energy=%v want 5200", e)
	}
}

func TestBroadcastSerializes(t *testing.T) {
	s := New(Config{Nodes: 3, CoresPerNode: 4, LinkBandwidth: 1e6, LinkLatency: 0, CPU: flat()})
	d := s.Broadcast(0, 1e6) // 1 s per destination, 2 destinations
	if math.Abs(d-2) > 1e-9 {
		t.Fatalf("broadcast=%v want 2", d)
	}
	if math.Abs(s.Clock(0)-2) > 1e-9 {
		t.Fatalf("src clock=%v want 2", s.Clock(0))
	}
}

func TestEnergyIncludesTrailingIdle(t *testing.T) {
	s := newSim(2, 4)
	s.Run(0, 1, 50)
	e := s.Energy() // charges node 1 with 50 s idle
	if e < 50*10*2 {
		t.Fatalf("Energy=%v should include both nodes' floor", e)
	}
	_, busy, joules := s.NodeStats(1)
	if busy != 0 || joules != 500 {
		t.Fatalf("node1 stats busy=%v joules=%v", busy, joules)
	}
}

func TestMoreCoresFasterButMorePower(t *testing.T) {
	// The paper's core-count trade-off: 4 cores finish in half the time of
	// 2 cores and use *less total energy* here because the idle floor is
	// paid for less time — matching the paper's observation that using all
	// cores also helped energy.
	work := 1000.0
	two := newSim(1, 4)
	two.RunParallel(0, 2, work)
	four := newSim(1, 4)
	four.RunParallel(0, 4, work)
	if !(four.Time() < two.Time()) {
		t.Fatal("4 cores should be faster")
	}
	if !(four.Energy() < two.Energy()) {
		t.Fatalf("4 cores should cost less energy on this curve: %v vs %v", four.Energy(), two.Energy())
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := newSim(2, 4)
		prev := 0.0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				s.Run(int(op)%2, 1+int(op)%4, float64(op%7))
			case 1:
				s.Idle(int(op)%2, float64(op%5))
			case 2:
				s.Transfer(0, 1, int64(op)*1000)
			case 3:
				s.Barrier()
			}
			now := s.Time()
			if now < prev-1e-12 {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	s := newSim(1, 2)
	for name, fn := range map[string]func(){
		"neg-run":   func() { s.Run(0, 1, -1) },
		"neg-idle":  func() { s.Idle(0, -1) },
		"bad-node":  func() { s.Run(5, 1, 1) },
		"bad-cfg":   func() { New(Config{}) },
		"bad-node2": func() { s.Clock(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := Paper()
	if cfg.Nodes != 2 || cfg.CoresPerNode != 4 {
		t.Fatalf("paper cluster wrong: %+v", cfg)
	}
	if cfg.LinkBandwidth != 125e6 {
		t.Fatal("1 Gbps expected")
	}
	s := New(cfg)
	if s.Nodes() != 2 || s.Cores() != 4 {
		t.Fatal("accessors wrong")
	}
	if s.Config().Nodes != 2 {
		t.Fatal("Config accessor wrong")
	}
}

func TestHeterogeneousCluster(t *testing.T) {
	big := power.MustCurve([]power.Point{{Util: 0, Watts: 20}, {Util: 1, Watts: 90}})
	small := power.MustCurve([]power.Point{{Util: 0, Watts: 5}, {Util: 1, Watts: 15}})
	s := New(Config{
		LinkBandwidth: 125e6,
		Hetero: []NodeSpec{
			{Cores: 8, CPU: big},
			{Cores: 2, CPU: small},
		},
	})
	if s.Nodes() != 2 || s.NodeCores(0) != 8 || s.NodeCores(1) != 2 {
		t.Fatalf("hetero dims wrong: %d nodes, %d/%d cores", s.Nodes(), s.NodeCores(0), s.NodeCores(1))
	}
	if s.Cores() != 8 {
		t.Fatalf("Cores()=%d want max 8", s.Cores())
	}
	// Same parallel work: the big node is 4x faster.
	w0 := s.RunParallel(0, 8, 80)
	w1 := s.RunParallel(1, 8, 80) // capped to 2 cores
	if w0 != 10 || w1 != 40 {
		t.Fatalf("walls %v/%v want 10/40", w0, w1)
	}
	// Energy uses per-node curves: node0 90W*10s=900J busy so far;
	// node1 15W*40s=600J; Energy() barriers node0 +30s idle at 20W.
	if e := s.Energy(); math.Abs(e-(900+600+600)) > 1e-9 {
		t.Fatalf("hetero energy %v want 2100", e)
	}
	if u := s.Utilization(1); math.Abs(u-1) > 1e-12 {
		t.Fatalf("node1 util %v", u)
	}
}

func TestHeteroBadSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad spec should panic")
		}
	}()
	New(Config{Hetero: []NodeSpec{{Cores: 0}}})
}
