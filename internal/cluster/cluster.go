// Package cluster is the virtual-time cluster simulator standing in for
// the paper's physical testbed (2 nodes, Intel Xeon W-2102, 1 Gbps
// Ethernet). Training backends execute their real computation in ordinary
// Go, but post the *modeled* cost of every phase — environment steps,
// learner updates, synchronization barriers, network transfers — to this
// simulator, which maintains a per-node virtual clock and integrates CPU
// energy through a power curve. "Computation Time" and "Power Consumption"
// in the reproduced evaluation are read from here.
package cluster

import (
	"fmt"
	"math"

	"rldecide/internal/power"
)

// Config describes the simulated cluster.
type Config struct {
	Nodes         int
	CoresPerNode  int
	LinkBandwidth float64 // bytes/second (1 Gbps Ethernet ≈ 125e6)
	LinkLatency   float64 // seconds one-way
	CPU           power.Curve

	// Hetero, when non-empty, overrides Nodes/CoresPerNode/CPU with
	// per-node hardware — the heterogeneous-resource direction the paper
	// cites from the design-space-exploration literature. Nodes becomes
	// len(Hetero).
	Hetero []NodeSpec
}

// NodeSpec is one machine of a heterogeneous cluster.
type NodeSpec struct {
	Cores int
	CPU   power.Curve
}

// Paper returns the paper's testbed: 2 nodes × 4 cores, 1 Gbps switch.
func Paper() Config {
	return Config{
		Nodes:         2,
		CoresPerNode:  4,
		LinkBandwidth: 125e6,
		LinkLatency:   100e-6,
		CPU:           power.XeonW2102(),
	}
}

// node tracks one machine's virtual clock and energy ledger.
type node struct {
	cores    int
	clock    float64
	meter    *power.Meter
	busyCore float64 // busy core-seconds, for utilization reporting
}

// Sim is the cluster simulator. It is not safe for concurrent use: the
// training backends drive it from their orchestration loop.
type Sim struct {
	cfg   Config
	nodes []*node
}

// New returns a simulator over cfg. It panics on non-positive dimensions
// (programmer error in experiment setup).
func New(cfg Config) *Sim {
	if cfg.LinkBandwidth <= 0 {
		cfg.LinkBandwidth = 125e6
	}
	s := &Sim{cfg: cfg}
	if len(cfg.Hetero) > 0 {
		s.cfg.Nodes = len(cfg.Hetero)
		for _, spec := range cfg.Hetero {
			if spec.Cores <= 0 {
				panic(fmt.Sprintf("cluster: bad node spec %+v", spec))
			}
			s.nodes = append(s.nodes, &node{cores: spec.Cores, meter: power.NewMeter(spec.CPU)})
		}
		return s
	}
	if cfg.Nodes <= 0 || cfg.CoresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: bad config %+v", cfg))
	}
	for i := 0; i < cfg.Nodes; i++ {
		s.nodes = append(s.nodes, &node{cores: cfg.CoresPerNode, meter: power.NewMeter(cfg.CPU)})
	}
	return s
}

// Nodes returns the node count.
func (s *Sim) Nodes() int { return len(s.nodes) }

// Cores returns the per-node core count of a homogeneous cluster (the
// largest node's count for a heterogeneous one).
func (s *Sim) Cores() int {
	c := 0
	for _, nd := range s.nodes {
		if nd.cores > c {
			c = nd.cores
		}
	}
	return c
}

// NodeCores returns node n's core count.
func (s *Sim) NodeCores(n int) int { return s.node(n).cores }

// Config returns the simulated cluster configuration.
func (s *Sim) Config() Config { return s.cfg }

func (s *Sim) node(i int) *node {
	if i < 0 || i >= len(s.nodes) {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", i, len(s.nodes)))
	}
	return s.nodes[i]
}

// Run executes seconds of wall time on cores parallel cores of node n:
// the node's clock advances by seconds and energy is accounted at
// utilization cores/CoresPerNode. cores is capped at the node size.
func (s *Sim) Run(n, cores int, seconds float64) {
	if seconds < 0 {
		panic("cluster: negative duration")
	}
	nd := s.node(n)
	if cores < 1 {
		cores = 1
	}
	if cores > nd.cores {
		cores = nd.cores
	}
	u := float64(cores) / float64(nd.cores)
	nd.meter.Add(u, seconds)
	nd.busyCore += float64(cores) * seconds
	nd.clock += seconds
}

// RunParallel executes a pool of totalWork CPU-seconds spread over cores
// parallel cores of node n (wall time = totalWork/cores) and returns the
// wall time.
func (s *Sim) RunParallel(n, cores int, totalWork float64) float64 {
	if cores < 1 {
		cores = 1
	}
	if max := s.node(n).cores; cores > max {
		cores = max
	}
	wall := totalWork / float64(cores)
	s.Run(n, cores, wall)
	return wall
}

// Idle advances node n's clock by seconds at idle power.
func (s *Sim) Idle(n int, seconds float64) {
	if seconds < 0 {
		panic("cluster: negative duration")
	}
	nd := s.node(n)
	nd.meter.Add(0, seconds)
	nd.clock += seconds
}

// Transfer ships bytes from node src to node dst over the link and returns
// the transfer duration. Both nodes first synchronize to the later of the
// two clocks (the earlier one idles), then spend the transfer time with
// one core busy handling I/O. Transfers within a node are free.
func (s *Sim) Transfer(src, dst int, bytes int64) float64 {
	if src == dst {
		return 0
	}
	a, b := s.node(src), s.node(dst)
	start := math.Max(a.clock, b.clock)
	s.syncTo(src, start)
	s.syncTo(dst, start)
	d := s.cfg.LinkLatency + float64(bytes)/s.cfg.LinkBandwidth
	a.meter.Add(1/float64(a.cores), d)
	b.meter.Add(1/float64(b.cores), d)
	a.busyCore += d
	b.busyCore += d
	a.clock = start + d
	b.clock = start + d
	return d
}

// Broadcast ships bytes from src to every other node, serialized on src's
// link (as a parameter-server weight broadcast would be), and returns the
// total duration.
func (s *Sim) Broadcast(src int, bytes int64) float64 {
	total := 0.0
	for i := range s.nodes {
		if i != src {
			total += s.Transfer(src, i, bytes)
		}
	}
	return total
}

// syncTo advances node n to time t at idle power (no-op if already past).
func (s *Sim) syncTo(n int, t float64) {
	nd := s.node(n)
	if t > nd.clock {
		nd.meter.Add(0, t-nd.clock)
		nd.clock = t
	}
}

// Barrier synchronizes all node clocks to the maximum, idling the
// laggards, and returns the barrier time.
func (s *Sim) Barrier() float64 {
	t := s.Time()
	for i := range s.nodes {
		s.syncTo(i, t)
	}
	return t
}

// Time returns the cluster's virtual time (the latest node clock).
func (s *Sim) Time() float64 {
	t := 0.0
	for _, nd := range s.nodes {
		if nd.clock > t {
			t = nd.clock
		}
	}
	return t
}

// Clock returns node n's own virtual clock.
func (s *Sim) Clock(n int) float64 { return s.node(n).clock }

// Energy returns the total energy accounted so far in joules, after
// charging idle power to every node up to the current cluster time (so a
// finished run's figure includes laggards' idle draw).
func (s *Sim) Energy() float64 {
	s.Barrier()
	e := 0.0
	for _, nd := range s.nodes {
		e += nd.meter.Joules()
	}
	return e
}

// NodeStats reports node n's clock, busy core-seconds and energy.
func (s *Sim) NodeStats(n int) (clock, busyCoreSeconds, joules float64) {
	nd := s.node(n)
	return nd.clock, nd.busyCore, nd.meter.Joules()
}

// Utilization returns node n's mean core utilization so far.
func (s *Sim) Utilization(n int) float64 {
	nd := s.node(n)
	if nd.clock == 0 {
		return 0
	}
	return nd.busyCore / (nd.clock * float64(nd.cores))
}
