package analysis

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rldecide/internal/journal"
	"rldecide/internal/rl"
)

// EpisodeWriter journals recorded trajectories as JSON Lines — one
// rl.Episode per line — with the same crash posture as trial journals:
// each record is flushed on its own line boundary, so a crash tears at
// most the final line, which ReadEpisodes tolerates. Safe for concurrent
// use by parallel trials. The file opens lazily on the first Record
// (append mode, so resumed studies extend their journal), and a writer
// that never records creates nothing.
type EpisodeWriter struct {
	path string

	mu sync.Mutex
	// guarded-by: mu
	f *os.File
	// guarded-by: mu
	bw *bufio.Writer
	// guarded-by: mu
	enc *json.Encoder
	// guarded-by: mu
	err error
}

// NewEpisodeWriter returns a writer journaling to path.
func NewEpisodeWriter(path string) *EpisodeWriter {
	return &EpisodeWriter{path: path}
}

// Record implements rl.EpisodeSink. Write errors are latched and
// reported by Close; recording never fails the trial that produced the
// episode (analysis stays off the result path even when the disk fills).
func (w *EpisodeWriter) Record(ep rl.Episode) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if w.f == nil {
		f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			w.err = err
			return
		}
		w.f = f
		w.bw = bufio.NewWriter(f)
		w.enc = json.NewEncoder(w.bw)
	}
	if err := w.enc.Encode(ep); err != nil {
		w.err = err
		return
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
}

// Close flushes and closes the journal, returning the first error seen.
// Idempotent and safe on a writer that never recorded.
func (w *EpisodeWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if err := w.bw.Flush(); err != nil && w.err == nil {
			w.err = err
		}
		if err := w.f.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.f = nil
	}
	return w.err
}

var _ rl.EpisodeSink = (*EpisodeWriter)(nil)

// ReadEpisodeStream decodes a trajectory journal with the journal
// package's torn-tail tolerance: a malformed final line yields the valid
// prefix plus an error wrapping journal.ErrTruncated; mid-stream
// corruption fails the read.
func ReadEpisodeStream(r io.Reader) ([]rl.Episode, error) {
	var out []rl.Episode
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var badErr error
	badLine := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			return nil, fmt.Errorf("analysis: trajectory line %d: %w", badLine, badErr)
		}
		var ep rl.Episode
		if err := json.Unmarshal(sc.Bytes(), &ep); err != nil {
			badErr = err
			badLine = line
			continue
		}
		out = append(out, ep)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if badErr != nil {
		return out, fmt.Errorf("analysis: trajectory line %d: %v: %w", badLine, badErr, journal.ErrTruncated)
	}
	return out, nil
}

// ReadEpisodes loads a trajectory journal from disk and sorts it into
// canonical (trial, index) order. Parallel trials append in completion
// order, which varies run to run; the canonical sort is what makes the
// attribution and counterfactual reports byte-identical across repeated
// runs of the same campaign. A torn tail is tolerated (the error wraps
// journal.ErrTruncated); a missing file is an error — the caller decides
// whether absence means "recording was off" or "something is wrong".
func ReadEpisodes(path string) ([]rl.Episode, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	eps, err := ReadEpisodeStream(f)
	if err != nil && !errors.Is(err, journal.ErrTruncated) {
		return nil, err
	}
	sort.SliceStable(eps, func(i, j int) bool {
		if eps[i].Trial != eps[j].Trial {
			return eps[i].Trial < eps[j].Trial
		}
		return eps[i].Index < eps[j].Index
	})
	return eps, err
}

// sinkKey is the context key carrying an rl.EpisodeSink through the
// evaluation path.
type sinkKey struct{}

// WithEpisodeSink returns a context carrying sink for trajectory-aware
// objectives to discover. The daemon attaches a per-study EpisodeWriter
// on locally executed trials; worker-side evaluation carries none, so
// fleet-mode trials record nothing (the daemon cannot reach a remote
// worker's disk).
func WithEpisodeSink(ctx context.Context, sink rl.EpisodeSink) context.Context {
	return context.WithValue(ctx, sinkKey{}, sink)
}

// EpisodeSinkFrom extracts the sink attached by WithEpisodeSink, or nil.
func EpisodeSinkFrom(ctx context.Context) rl.EpisodeSink {
	sink, _ := ctx.Value(sinkKey{}).(rl.EpisodeSink)
	return sink
}
