package analysis

import (
	"fmt"
	"math"
	"sort"

	"rldecide/internal/rl"
)

// AttributionOptions tunes AnalyzeAttribution. Zero values take
// defaults.
type AttributionOptions struct {
	// Clusters is the number of trajectory clusters k (default 4, capped
	// at the episode count).
	Clusters int `json:"clusters,omitempty"`
	// MaxProbes caps the decision-probe set the ablation is scored on
	// (default 256).
	MaxProbes int `json:"max_probes,omitempty"`
	// MaxRefSteps caps the behavior-reference step set (default 4096).
	MaxRefSteps int `json:"max_ref_steps,omitempty"`
}

// EpisodeRef identifies one recorded episode in a report.
type EpisodeRef struct {
	Trial  int     `json:"trial"`
	Index  int     `json:"index"`
	Return float64 `json:"return"`
}

// AttributionCluster is one trajectory cluster with its influence score:
// the fraction of probed decisions the data-derived behavior policy
// changes when the cluster's trajectories are removed from the data.
type AttributionCluster struct {
	Cluster    int          `json:"cluster"`
	Size       int          `json:"size"`
	Steps      int          `json:"steps"`
	MeanReturn float64      `json:"mean_return"`
	Influence  float64      `json:"influence"`
	Episodes   []EpisodeRef `json:"episodes"`
}

// AttributionReport scores which recorded trajectories most influenced
// the final policy, in the cluster-and-ablate shape of the
// trajectory-attribution literature: embed every episode as a fixed
// vector, cluster the embeddings, and measure each cluster's influence
// by ablating it from the data behind a behavior policy and counting the
// decisions that flip.
type AttributionReport struct {
	Episodes int `json:"episodes"`
	Steps    int `json:"steps"`
	K        int `json:"k"`
	Probes   int `json:"probes"`
	// Clusters in cluster-id order; Ranking is the cluster ids by
	// influence, most influential first.
	Clusters []AttributionCluster `json:"clusters"`
	Ranking  []int                `json:"ranking"`
	// Top lists the most representative episodes (closest to centroid)
	// of the most influential cluster.
	Top []EpisodeRef `json:"top,omitempty"`
}

// AnalyzeAttribution runs cluster-and-ablate attribution over recorded
// trajectories. Everything is deterministic: episodes are consumed in
// canonical order, clustering uses farthest-first initialization (no
// randomness), and all ties break toward the lower index — identical
// journals yield byte-identical reports.
//
// The "retrain without this data" step of the published method is
// approximated by a nonparametric behavior policy: a 1-nearest-neighbor
// lookup from observation to recorded action over the (possibly ablated)
// step set. A cluster whose removal flips many of the probed decisions
// contributed decisions no other data covers — the influence signal.
func AnalyzeAttribution(episodes []rl.Episode, opts AttributionOptions) (AttributionReport, error) {
	if opts.Clusters <= 0 {
		opts.Clusters = 4
	}
	if opts.MaxProbes <= 0 {
		opts.MaxProbes = 256
	}
	if opts.MaxRefSteps <= 0 {
		opts.MaxRefSteps = 4096
	}
	if len(episodes) == 0 {
		return AttributionReport{}, fmt.Errorf("analysis: attribution needs at least one recorded episode")
	}
	obsDim := 0
	for _, ep := range episodes {
		if len(ep.Obs) > 0 {
			obsDim = len(ep.Obs[0])
			break
		}
	}
	if obsDim == 0 {
		return AttributionReport{}, fmt.Errorf("analysis: recorded episodes carry no observations")
	}

	// Embed: [normalized length, return, mean obs, final obs].
	var embeds [][]float64
	var kept []rl.Episode
	for _, ep := range episodes {
		if len(ep.Obs) == 0 || len(ep.Obs[0]) != obsDim {
			continue
		}
		kept = append(kept, ep)
		embeds = append(embeds, embedEpisode(ep, obsDim))
	}
	totalSteps := 0
	for _, ep := range kept {
		totalSteps += ep.Len()
	}

	k := opts.Clusters
	if k > len(kept) {
		k = len(kept)
	}
	assign, centroids := kmeans(embeds, k)

	// Step sets: the reference set the behavior policy looks actions up
	// in, and the probe set the ablation is scored on. Both subsample
	// with a deterministic stride.
	type step struct {
		cluster int
		obs     []float64
		act     float64
	}
	var refs []step
	refStride := strideFor(totalSteps, opts.MaxRefSteps)
	seen := 0
	for e, ep := range kept {
		for t := 0; t < ep.Len(); t++ {
			if len(ep.Obs) <= t || len(ep.Act) <= t || len(ep.Act[t]) == 0 {
				continue
			}
			if seen%refStride == 0 {
				refs = append(refs, step{cluster: assign[e], obs: ep.Obs[t], act: ep.Act[t][0]})
			}
			seen++
		}
	}
	probeStride := strideFor(len(refs), opts.MaxProbes)
	var probes []step
	for i := 0; i < len(refs); i += probeStride {
		probes = append(probes, refs[i])
	}

	// Baseline decision per probe under the full data, then per-cluster
	// ablated decisions. exclude < 0 means "nothing excluded".
	decide := func(obs []float64, exclude int) (float64, bool) {
		best := math.Inf(1)
		act := 0.0
		found := false
		for _, r := range refs {
			if r.cluster == exclude {
				continue
			}
			d := sqDist(obs, r.obs)
			if d < best {
				best = d
				act = r.act
				found = true
			}
		}
		return act, found
	}
	base := make([]float64, len(probes))
	for i, p := range probes {
		base[i], _ = decide(p.obs, -1)
	}

	rep := AttributionReport{Episodes: len(kept), Steps: totalSteps, K: k, Probes: len(probes)}
	for c := 0; c < k; c++ {
		cl := AttributionCluster{Cluster: c}
		retSum := 0.0
		for e, ep := range kept {
			if assign[e] != c {
				continue
			}
			cl.Size++
			cl.Steps += ep.Len()
			retSum += ep.Return
			cl.Episodes = append(cl.Episodes, EpisodeRef{Trial: ep.Trial, Index: ep.Index, Return: ep.Return})
		}
		if cl.Size > 0 {
			cl.MeanReturn = retSum / float64(cl.Size)
		}
		flipped := 0
		scored := 0
		for i, p := range probes {
			act, found := decide(p.obs, c)
			if !found {
				// Removing this cluster removes all data: every decision
				// it covered is lost.
				flipped++
				scored++
				continue
			}
			scored++
			if int(act) != int(base[i]) {
				flipped++
			}
		}
		if scored > 0 {
			cl.Influence = float64(flipped) / float64(scored)
		}
		rep.Clusters = append(rep.Clusters, cl)
	}

	rep.Ranking = make([]int, k)
	for i := range rep.Ranking {
		rep.Ranking[i] = i
	}
	sort.SliceStable(rep.Ranking, func(i, j int) bool {
		return rep.Clusters[rep.Ranking[i]].Influence > rep.Clusters[rep.Ranking[j]].Influence
	})

	// Top episodes: the most influential cluster's members, closest to
	// its centroid first.
	if k > 0 {
		top := rep.Ranking[0]
		type scored struct {
			ref  EpisodeRef
			dist float64
			ord  int
		}
		var members []scored
		for e, ep := range kept {
			if assign[e] != top {
				continue
			}
			members = append(members, scored{
				ref:  EpisodeRef{Trial: ep.Trial, Index: ep.Index, Return: ep.Return},
				dist: sqDist(embeds[e], centroids[top]),
				ord:  e,
			})
		}
		sort.SliceStable(members, func(i, j int) bool {
			if members[i].dist < members[j].dist {
				return true
			}
			if members[i].dist > members[j].dist {
				return false
			}
			return members[i].ord < members[j].ord
		})
		if len(members) > 5 {
			members = members[:5]
		}
		for _, m := range members {
			rep.Top = append(rep.Top, m.ref)
		}
	}
	return rep, nil
}

// embedEpisode maps an episode to [len/100, return, mean obs..., final
// obs...] — a fixed 2·obsDim+2 vector.
func embedEpisode(ep rl.Episode, obsDim int) []float64 {
	out := make([]float64, 0, 2*obsDim+2)
	out = append(out, float64(ep.Len())/100, ep.Return)
	mean := make([]float64, obsDim)
	n := 0
	for _, o := range ep.Obs {
		if len(o) != obsDim {
			continue
		}
		for i, v := range o {
			mean[i] += v
		}
		n++
	}
	if n > 0 {
		for i := range mean {
			mean[i] /= float64(n)
		}
	}
	out = append(out, mean...)
	return append(out, ep.Obs[len(ep.Obs)-1]...)
}

// strideFor returns the subsampling stride that keeps n items under cap.
func strideFor(n, cap int) int {
	if n <= cap {
		return 1
	}
	return (n + cap - 1) / cap
}

// sqDist is the squared Euclidean distance over the common prefix.
func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmeans clusters points into k groups deterministically: centroids are
// initialized by farthest-first traversal from the global mean (no
// randomness) and refined with a fixed number of Lloyd iterations; all
// ties break toward the lower index.
func kmeans(points [][]float64, k int) (assign []int, centroids [][]float64) {
	n := len(points)
	assign = make([]int, n)
	if n == 0 || k <= 0 {
		return assign, nil
	}
	dim := len(points[0])
	mean := make([]float64, dim)
	for _, p := range points {
		for i, v := range p {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	// Farthest-first: seed with the point farthest from the global mean,
	// then repeatedly add the point farthest from its nearest centroid.
	centroids = make([][]float64, 0, k)
	pick := farthest(points, [][]float64{mean})
	centroids = append(centroids, clone(points[pick]))
	for len(centroids) < k {
		pick = farthest(points, centroids)
		centroids = append(centroids, clone(points[pick]))
	}
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, p := range points {
			best := 0
			bd := sqDist(p, centroids[0])
			for c := 1; c < k; c++ {
				if d := sqDist(p, centroids[c]); d < bd {
					bd = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := range centroids {
			for i := range centroids[c] {
				centroids[c][i] = 0
			}
		}
		counts := make([]int, k)
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				centroids[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: re-seed at the point farthest from the
				// non-empty centroids (deterministic).
				copy(centroids[c], points[farthest(points, centroids)])
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] /= float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	return assign, centroids
}

// farthest returns the index of the point with the greatest
// nearest-centroid distance (lowest index on ties).
func farthest(points, centroids [][]float64) int {
	best := -1
	bd := -1.0
	for i, p := range points {
		nd := math.Inf(1)
		for _, c := range centroids {
			if d := sqDist(p, c); d < nd {
				nd = d
			}
		}
		if nd > bd {
			bd = nd
			best = i
		}
	}
	return best
}

// clone copies a vector.
func clone(v []float64) []float64 { return append([]float64(nil), v...) }
