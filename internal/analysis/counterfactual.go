package analysis

import (
	"fmt"
	"sort"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/rl"
)

// CounterfactualOptions tunes AnalyzeCounterfactuals. Zero values take
// defaults.
type CounterfactualOptions struct {
	// Horizon is how many pilot-policy steps each branch rolls forward
	// after the counterfactual action (default 20).
	Horizon int `json:"horizon,omitempty"`
	// Stride probes every Stride-th recorded step as a decision point
	// (default 5).
	Stride int `json:"stride,omitempty"`
	// TopN is how many decision points the report keeps, most regretful
	// first (default 10).
	TopN int `json:"top_n,omitempty"`
	// MaxEpisodes caps the episodes branched from (default 16, taken in
	// canonical order).
	MaxEpisodes int `json:"max_episodes,omitempty"`
}

// Branch is one rolled-out alternative at a decision point.
type Branch struct {
	Action  []float64 `json:"action"`
	Return  float64   `json:"return"`
	Factual bool      `json:"factual,omitempty"`
}

// DecisionPoint is one recorded step branched into counterfactuals: the
// factual action replayed against every alternative under the same
// branch seed. Regret is the return of the best branch minus the
// factual branch — how much a different decision would have gained.
type DecisionPoint struct {
	Trial         int       `json:"trial"`
	Index         int       `json:"index"`
	Step          int       `json:"step"`
	Env           string    `json:"env"`
	FactualAction []float64 `json:"factual_action"`
	FactualReturn float64   `json:"factual_return"`
	BestAction    []float64 `json:"best_action"`
	BestReturn    float64   `json:"best_return"`
	Regret        float64   `json:"regret"`
	Branches      []Branch  `json:"branches"`
}

// CounterfactualReport ranks recorded decision points by how much the
// realized action diverged from the best available alternative.
type CounterfactualReport struct {
	Episodes int             `json:"episodes"`
	Points   int             `json:"points"`
	Horizon  int             `json:"horizon"`
	Stride   int             `json:"stride"`
	Envs     []string        `json:"envs,omitempty"`
	Top      []DecisionPoint `json:"top,omitempty"`
}

// AnalyzeCounterfactuals replays recorded decision points against the
// actions not taken. Each probed step restores the episode's saved
// gym.StatefulEnv snapshot, applies one alternative action, and rolls
// the episode forward with the environment's registered pilot policy;
// branches at the same decision point share one derived seed, so every
// alternative faces identical post-branch randomness (common random
// numbers) and the return spread measures the action, not the noise.
// The whole procedure is deterministic: identical journals yield
// byte-identical reports.
//
// Episodes recorded without snapshots (the env did not implement
// gym.StatefulEnv) or naming an unregistered environment are skipped;
// if nothing remains, AnalyzeCounterfactuals returns an error.
func AnalyzeCounterfactuals(episodes []rl.Episode, opts CounterfactualOptions) (CounterfactualReport, error) {
	if opts.Horizon <= 0 {
		opts.Horizon = 20
	}
	if opts.Stride <= 0 {
		opts.Stride = 5
	}
	if opts.TopN <= 0 {
		opts.TopN = 10
	}
	if opts.MaxEpisodes <= 0 {
		opts.MaxEpisodes = 16
	}
	rep := CounterfactualReport{Horizon: opts.Horizon, Stride: opts.Stride}

	envSeen := map[string]bool{}
	var points []DecisionPoint
	used := 0
	for _, ep := range episodes {
		if used >= opts.MaxEpisodes {
			break
		}
		if len(ep.States) == 0 || ep.Env == "" {
			continue
		}
		spec, err := LookupEnv(ep.Env)
		if err != nil {
			continue
		}
		env, ok := spec.Maker(ep.Seed).(gym.StatefulEnv)
		if !ok {
			continue
		}
		used++
		if !envSeen[ep.Env] {
			envSeen[ep.Env] = true
			rep.Envs = append(rep.Envs, ep.Env)
		}
		for t := 0; t < len(ep.States) && t < len(ep.Act); t += opts.Stride {
			factual := ep.Act[t]
			if len(factual) == 0 {
				continue
			}
			seed := branchSeed(ep.Trial, ep.Index, t)
			fret, ok := branchReturn(env, ep.States[t], seed, factual, spec.Pilot, opts.Horizon)
			if !ok {
				continue
			}
			dp := DecisionPoint{
				Trial:         ep.Trial,
				Index:         ep.Index,
				Step:          t,
				Env:           ep.Env,
				FactualAction: factual,
				FactualReturn: fret,
				BestAction:    factual,
				BestReturn:    fret,
				Branches:      []Branch{{Action: factual, Return: fret, Factual: true}},
			}
			for _, alt := range alternatives(env.ActionSpace(), factual) {
				aret, ok := branchReturn(env, ep.States[t], seed, alt, spec.Pilot, opts.Horizon)
				if !ok {
					continue
				}
				dp.Branches = append(dp.Branches, Branch{Action: alt, Return: aret})
				if aret > dp.BestReturn {
					dp.BestReturn = aret
					dp.BestAction = alt
				}
			}
			dp.Regret = dp.BestReturn - dp.FactualReturn
			points = append(points, dp)
		}
	}
	if used == 0 {
		return rep, fmt.Errorf("analysis: no branchable episodes (need snapshots and a registered environment; registered: %v)", Envs())
	}
	rep.Episodes = used
	rep.Points = len(points)

	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Regret > points[j].Regret {
			return true
		}
		if points[i].Regret < points[j].Regret {
			return false
		}
		if points[i].Trial != points[j].Trial {
			return points[i].Trial < points[j].Trial
		}
		if points[i].Index != points[j].Index {
			return points[i].Index < points[j].Index
		}
		return points[i].Step < points[j].Step
	})
	if len(points) > opts.TopN {
		points = points[:opts.TopN]
	}
	rep.Top = points
	return rep, nil
}

// branchReturn rolls one counterfactual branch: reseed for deterministic
// post-branch randomness, Reset to a defined episode state, Restore the
// saved snapshot, take the branch action, then follow the pilot policy
// for up to horizon further steps.
func branchReturn(env gym.StatefulEnv, snap []float64, seed uint64, action []float64, pilot rl.Policy, horizon int) (float64, bool) {
	env.Seed(seed)
	env.Reset()
	if err := env.Restore(snap); err != nil {
		return 0, false
	}
	res := env.Step(action)
	ret := res.Reward
	for h := 0; h < horizon && !res.Done; h++ {
		res = env.Step(pilot.Act(res.Obs))
		ret += res.Reward
	}
	return ret, true
}

// alternatives enumerates the counterfactual actions for a space: every
// other index of a Discrete space, or the low/mid/high corners of a Box.
func alternatives(space gym.Space, factual []float64) [][]float64 {
	switch s := space.(type) {
	case gym.Discrete:
		out := make([][]float64, 0, s.N-1)
		for a := 0; a < s.N; a++ {
			if a == int(factual[0]) {
				continue
			}
			out = append(out, []float64{float64(a)})
		}
		return out
	case gym.Box:
		mid := make([]float64, len(s.Low))
		for i := range mid {
			mid[i] = (s.Low[i] + s.High[i]) / 2
		}
		return [][]float64{
			append([]float64(nil), s.Low...),
			mid,
			append([]float64(nil), s.High...),
		}
	default:
		return nil
	}
}

// branchSeed derives the shared per-decision-point branch seed. Every
// branch at (trial, index, step) gets the same seed — common random
// numbers — and distinct decision points get well-separated streams.
func branchSeed(trial, index, step int) uint64 {
	s := uint64(trial)<<40 ^ uint64(index)<<20 ^ uint64(step)
	return mathx.SplitMix64(&s)
}
