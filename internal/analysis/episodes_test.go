package analysis

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rldecide/internal/journal"
	"rldecide/internal/rl"
)

// recordFleet records a small deterministic fleet of steer1d episodes
// with the registered pilot policy, stamped with (trial, index).
func recordFleet(t *testing.T, trials, perTrial int) []rl.Episode {
	t.Helper()
	spec, err := LookupEnv("steer1d")
	if err != nil {
		t.Fatal(err)
	}
	var eps []rl.Episode
	for trial := 0; trial < trials; trial++ {
		for i := 0; i < perTrial; i++ {
			seed := uint64(1000*trial + i)
			ep := rl.RecordEpisode(spec.Maker(seed), spec.Pilot)
			ep.Trial, ep.Index, ep.Env, ep.Seed = trial, i, "steer1d", seed
			eps = append(eps, ep)
		}
	}
	return eps
}

func TestEpisodeWriterRoundTrip(t *testing.T) {
	eps := recordFleet(t, 3, 2)
	path := filepath.Join(t.TempDir(), "s1.trajectories.jsonl")
	w := NewEpisodeWriter(path)
	// Record in scrambled completion order, concurrently — the shape a
	// parallel study produces.
	order := []int{4, 1, 5, 0, 3, 2}
	var wg sync.WaitGroup
	for _, i := range order {
		wg.Add(1)
		go func(ep rl.Episode) {
			defer wg.Done()
			w.Record(ep)
		}(eps[i])
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadEpisodes(path)
	if err != nil {
		t.Fatal(err)
	}
	// ReadEpisodes canonicalizes to (trial, index) order regardless of
	// completion order.
	if len(got) != len(eps) {
		t.Fatalf("got %d episodes, want %d", len(got), len(eps))
	}
	a, _ := json.Marshal(got)
	b, _ := json.Marshal(eps)
	if string(a) != string(b) {
		t.Fatalf("canonical read differs from recorded fleet:\n%s\n%s", a, b)
	}
	if got[0].Len() == 0 || len(got[0].States) != got[0].Len() {
		t.Fatalf("episode missing snapshots: len=%d states=%d", got[0].Len(), len(got[0].States))
	}

	// Torn tail: appending half a record keeps the valid prefix.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":9,"ind`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = ReadEpisodes(path)
	if !errors.Is(err, journal.ErrTruncated) {
		t.Fatalf("torn tail: err = %v, want ErrTruncated", err)
	}
	if len(got) != len(eps) {
		t.Fatalf("torn tail: got %d episodes, want %d", len(got), len(eps))
	}

	// A writer that never records creates nothing and closes cleanly.
	idle := NewEpisodeWriter(filepath.Join(t.TempDir(), "never.jsonl"))
	if err := idle.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(idle.path); !os.IsNotExist(err) {
		t.Fatalf("idle writer created a file (err=%v)", err)
	}
}

func TestCacheSidecar(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "input.jsonl")
	if err := os.WriteFile(in, []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(in)
	path := CachePath(dir, "s1", "traces")

	if _, ok := LoadCached(path, "traces", fp); ok {
		t.Fatal("hit on a cache that was never written")
	}
	if err := SaveCached(path, "traces", "s1", fp, map[string]int{"events": 3}); err != nil {
		t.Fatal(err)
	}
	raw, ok := LoadCached(path, "traces", fp)
	if !ok {
		t.Fatal("miss immediately after save")
	}
	var rep map[string]int
	if err := json.Unmarshal(raw, &rep); err != nil || rep["events"] != 3 {
		t.Fatalf("cached report = %s (err=%v)", raw, err)
	}
	// Wrong kind and stale fingerprint both miss.
	if _, ok := LoadCached(path, "attribution", fp); ok {
		t.Fatal("hit across kinds")
	}
	if err := os.WriteFile(in, []byte("x grew\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadCached(path, "traces", Fingerprint(in)); ok {
		t.Fatal("hit after the input grew")
	}
	// Missing inputs still fingerprint (to a distinct value).
	if Fingerprint(in) == Fingerprint(filepath.Join(dir, "gone.jsonl")) {
		t.Fatal("missing file fingerprints like a present one")
	}
}
