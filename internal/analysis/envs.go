package analysis

import (
	"fmt"
	"sort"
	"sync"

	"rldecide/internal/airdrop"
	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/rl"
)

// EnvSpec is one entry of the analysis environment registry: how to
// rebuild the environment a trajectory was recorded on, and a scripted
// pilot policy to continue rollouts with after a counterfactual branch.
// Analysis cannot execute arbitrary code named by an on-disk journal, so
// — exactly like the daemon's objective registry — every environment a
// recorded episode may name must be registered in-process.
type EnvSpec struct {
	Maker gym.EnvMaker
	Pilot rl.Policy
}

var (
	envMu       sync.RWMutex
	envRegistry = map[string]EnvSpec{}
)

// RegisterEnv makes an environment available to the counterfactual
// analyzer under the given name, replacing any previous registration.
func RegisterEnv(name string, maker gym.EnvMaker, pilot rl.Policy) {
	if name == "" || maker == nil || pilot == nil {
		panic("analysis: RegisterEnv needs a name, a maker and a pilot policy")
	}
	envMu.Lock()
	defer envMu.Unlock()
	envRegistry[name] = EnvSpec{Maker: maker, Pilot: pilot}
}

// LookupEnv resolves a registered environment.
func LookupEnv(name string) (EnvSpec, error) {
	envMu.RLock()
	spec, ok := envRegistry[name]
	envMu.RUnlock()
	if !ok {
		return EnvSpec{}, fmt.Errorf("analysis: unknown environment %q (registered: %v)", name, Envs())
	}
	return spec, nil
}

// Envs lists the registered environment names, sorted.
func Envs() []string {
	envMu.RLock()
	defer envMu.RUnlock()
	out := make([]string, 0, len(envRegistry))
	for name := range envRegistry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterEnv("chain", toy.MakeChain(9), rl.PolicyFunc(chainPilot))
	RegisterEnv("steer1d", toy.MakeSteer1D(), rl.PolicyFunc(steer1DPilot))
	RegisterEnv("airdrop", airdrop.Make(airdrop.NewConfig()), airdrop.Autopilot{})
}

// chainPilot always walks right — the optimal Chain policy.
func chainPilot([]float64) []float64 { return []float64{1} }

// steer1DPilot is a proportional controller for Steer1D: drive velocity
// toward the value that lands at the origin when the time budget runs
// out. Observation = (pos, vel, time-left fraction); the default horizon
// is 60 steps.
func steer1DPilot(obs []float64) []float64 {
	pos, vel := obs[0], obs[1]
	left := obs[2] * 60
	if left < 1 {
		left = 1
	}
	want := -pos / left
	switch {
	case vel > want+0.04:
		return []float64{0}
	case vel < want-0.04:
		return []float64{2}
	default:
		return []float64{1}
	}
}
