package analysis

import (
	"encoding/json"
	"testing"

	"rldecide/internal/gym"
)

// TestStatefulEnvContract exercises every registered environment's
// snapshot/restore seam: a restored branch must replay exactly like a
// second restored branch under the same seed (common random numbers),
// and snapshots must round-trip.
func TestStatefulEnvContract(t *testing.T) {
	for _, name := range Envs() {
		t.Run(name, func(t *testing.T) {
			spec, err := LookupEnv(name)
			if err != nil {
				t.Fatal(err)
			}
			env, ok := spec.Maker(7).(gym.StatefulEnv)
			if !ok {
				t.Fatalf("registered env %q does not implement gym.StatefulEnv", name)
			}
			// Advance into the episode so the snapshot is non-trivial.
			obs := env.Reset()
			for i := 0; i < 5; i++ {
				res := env.Step(spec.Pilot.Act(obs))
				obs = res.Obs
				if res.Done {
					obs = env.Reset()
				}
			}
			snap := env.Snapshot(nil)

			branch := func(action []float64) []float64 {
				env.Seed(99)
				env.Reset()
				if err := env.Restore(append([]float64(nil), snap...)); err != nil {
					t.Fatal(err)
				}
				res := env.Step(action)
				rews := []float64{res.Reward}
				for j := 0; j < 10 && !res.Done; j++ {
					res = env.Step(spec.Pilot.Act(res.Obs))
					rews = append(rews, res.Reward)
				}
				return rews
			}
			a := branch([]float64{0})
			b := branch([]float64{0})
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatalf("restored branches diverge under the same seed:\n%s\n%s", ja, jb)
			}

			// Restore + Snapshot round-trips.
			env.Seed(99)
			env.Reset()
			if err := env.Restore(snap); err != nil {
				t.Fatal(err)
			}
			again := env.Snapshot(nil)
			js, _ := json.Marshal(snap)
			jg, _ := json.Marshal(again)
			if string(js) != string(jg) {
				t.Fatalf("snapshot does not round-trip:\n%s\n%s", js, jg)
			}

			// Malformed snapshots are rejected, not absorbed.
			if err := env.Restore([]float64{1}); err == nil {
				t.Fatal("Restore accepted a snapshot of the wrong arity")
			}
		})
	}
}

// TestAttributionDeterminism: identical recorded fleets yield
// byte-identical attribution reports, run after run.
func TestAttributionDeterminism(t *testing.T) {
	eps := recordFleet(t, 3, 4)
	r1, err := AnalyzeAttribution(eps, AttributionOptions{Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Second run over a freshly recorded (but identical) fleet.
	r2, err := AnalyzeAttribution(recordFleet(t, 3, 4), AttributionOptions{Clusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatalf("attribution reports diverge across runs:\n%s\n%s", j1, j2)
	}
	if r1.Episodes != 12 || r1.K != 3 || len(r1.Clusters) != 3 {
		t.Fatalf("report shape: %+v", r1)
	}
	total := 0
	for _, c := range r1.Clusters {
		total += c.Size
	}
	if total != 12 {
		t.Fatalf("cluster sizes sum to %d, want 12", total)
	}
	if len(r1.Ranking) != 3 || len(r1.Top) == 0 {
		t.Fatalf("ranking/top missing: %+v", r1)
	}
	for i := 1; i < len(r1.Ranking); i++ {
		if r1.Clusters[r1.Ranking[i-1]].Influence < r1.Clusters[r1.Ranking[i]].Influence {
			t.Fatalf("ranking not sorted by influence: %+v", r1)
		}
	}

	if _, err := AnalyzeAttribution(nil, AttributionOptions{}); err == nil {
		t.Fatal("attribution over zero episodes should error")
	}
}

// TestCounterfactualDeterminism: same journal, same rankings — byte for
// byte — and the factual branch is always present at each decision point.
func TestCounterfactualDeterminism(t *testing.T) {
	eps := recordFleet(t, 2, 3)
	opts := CounterfactualOptions{Horizon: 10, Stride: 7, TopN: 5}
	r1, err := AnalyzeCounterfactuals(eps, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeCounterfactuals(recordFleet(t, 2, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatalf("counterfactual reports diverge across runs:\n%s\n%s", j1, j2)
	}
	if r1.Episodes != 6 || r1.Points == 0 || len(r1.Top) == 0 || len(r1.Top) > 5 {
		t.Fatalf("report shape: %+v", r1)
	}
	for _, dp := range r1.Top {
		if dp.Env != "steer1d" || len(dp.Branches) != 3 { // factual + 2 alternatives of Discrete(3)
			t.Fatalf("decision point: %+v", dp)
		}
		if !dp.Branches[0].Factual {
			t.Fatalf("first branch is not the factual one: %+v", dp)
		}
		if dp.Regret < 0 {
			t.Fatalf("negative regret (best excludes factual?): %+v", dp)
		}
	}
	// Ranked by regret, descending.
	for i := 1; i < len(r1.Top); i++ {
		if r1.Top[i-1].Regret < r1.Top[i].Regret {
			t.Fatalf("top not sorted by regret: %+v", r1.Top)
		}
	}

	// Episodes without snapshots or with unknown envs are skipped; all
	// skipped is an error.
	bare := recordFleet(t, 1, 1)
	bare[0].States = nil
	if _, err := AnalyzeCounterfactuals(bare, opts); err == nil {
		t.Fatal("snapshot-less episodes should not be branchable")
	}
}
