package analysis

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rldecide/internal/journal"
	"rldecide/internal/obs"
)

// span emits a trial_start/trial_done pair.
func span(study string, trial int, worker string, start, dur float64) []obs.Event {
	return []obs.Event{
		{TMs: start, Kind: obs.KindTrialStart, Study: study, Trial: trial},
		{TMs: start + dur, Kind: obs.KindTrialDone, Study: study, Trial: trial, Worker: worker, Status: "ok"},
	}
}

func TestAnalyzeTrace(t *testing.T) {
	var events []obs.Event
	// Four normal trials and one straggler (10x the p50) on worker b.
	events = append(events, span("s1", 1, "a", 0, 10)...)
	events = append(events, span("s1", 2, "a", 5, 10)...)
	events = append(events, span("s1", 3, "b", 10, 12)...)
	events = append(events, span("s1", 4, "b", 15, 100)...)
	events = append(events, span("s2", 1, "a", 0, 10)...) // other study
	events = append(events,
		obs.Event{TMs: 0, Kind: obs.KindDispatch, Study: "s1", Trial: 1, Attempt: 1},
		obs.Event{TMs: 4, Kind: obs.KindDispatchEnd, Study: "s1", Trial: 1, Attempt: 1},
		// Unmatched start: a trial still running must not be counted.
		obs.Event{TMs: 50, Kind: obs.KindTrialStart, Study: "s1", Trial: 5},
	)

	rep := AnalyzeTrace(events, TraceOptions{Study: "s1"})
	if rep.Trials.Count != 4 {
		t.Fatalf("closed trials = %d, want 4", rep.Trials.Count)
	}
	if rep.Dispatches.Count != 1 {
		t.Fatalf("closed dispatches = %d, want 1", rep.Dispatches.Count)
	}
	if len(rep.Workers) != 2 || rep.Workers[0].Worker != "a" || rep.Workers[1].Worker != "b" {
		t.Fatalf("workers = %+v, want sorted a, b", rep.Workers)
	}
	if rep.Workers[0].Trials.Count != 2 {
		t.Fatalf("worker a trials = %d, want 2", rep.Workers[0].Trials.Count)
	}
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v, want exactly trial 4", rep.Stragglers)
	}
	s := rep.Stragglers[0]
	if s.Trial != 4 || s.Worker != "b" || s.Ratio < 9 {
		t.Fatalf("straggler = %+v", s)
	}
	if len(rep.Studies) != 1 || rep.Studies[0] != "s1" {
		t.Fatalf("studies = %v, want [s1]", rep.Studies)
	}

	// Unfiltered, both studies appear and the p50 shifts; the report stays
	// deterministic across repeated runs.
	all1, _ := json.Marshal(AnalyzeTrace(events, TraceOptions{}))
	all2, _ := json.Marshal(AnalyzeTrace(events, TraceOptions{}))
	if string(all1) != string(all2) {
		t.Fatalf("AnalyzeTrace is not deterministic:\n%s\n%s", all1, all2)
	}
}

// writeLines writes JSONL events (plus an optional raw tail) to path.
func writeLines(t *testing.T, path string, events []obs.Event, tail string) {
	t.Helper()
	var b strings.Builder
	for _, ev := range events {
		j, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(j)
		b.WriteByte('\n')
	}
	b.WriteString(tail)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadTraceRotatedAndTorn is the torn-tail satellite: a rotated
// trace (sealed segments plus an active file whose final line was cut by
// a crash) yields every valid event and an error wrapping
// journal.ErrTruncated — the same contract trial journals honor.
func TestReadTraceRotatedAndTorn(t *testing.T) {
	dir := t.TempDir()
	active := filepath.Join(dir, "trace.jsonl")

	var sealed0, sealed1, live []obs.Event
	for i := 0; i < 3; i++ {
		sealed0 = append(sealed0, obs.Event{Seq: uint64(i), Kind: obs.KindTrialStart, Study: "s1", Trial: i})
		sealed1 = append(sealed1, obs.Event{Seq: uint64(10 + i), Kind: obs.KindTrialDone, Study: "s1", Trial: i})
		live = append(live, obs.Event{Seq: uint64(20 + i), Kind: obs.KindDispatch, Study: "s1", Trial: i})
	}
	// Segment files as obs.OpenTracerRotating seals them: <base>-<n>.<ext>.
	writeLines(t, filepath.Join(dir, "trace-0.jsonl"), sealed0, "")
	writeLines(t, filepath.Join(dir, "trace-1.jsonl"), sealed1, "")
	writeLines(t, active, live, `{"seq":99,"kind":"trial_`) // torn mid-flush

	events, err := ReadTrace(active)
	if !errors.Is(err, journal.ErrTruncated) {
		t.Fatalf("torn tail: err = %v, want ErrTruncated", err)
	}
	if len(events) != 9 {
		t.Fatalf("got %d events, want 9 (3 per segment)", len(events))
	}
	// Segment order: sealed by index, then the active file.
	if events[0].Seq != 0 || events[3].Seq != 10 || events[6].Seq != 20 {
		t.Fatalf("segment order broken: seqs %d %d %d", events[0].Seq, events[3].Seq, events[6].Seq)
	}

	// A torn line in a SEALED segment is corruption, not a tail.
	writeLines(t, filepath.Join(dir, "trace-0.jsonl"), sealed0, "{torn")
	if _, err := ReadTrace(active); err == nil || errors.Is(err, journal.ErrTruncated) {
		t.Fatalf("sealed-segment corruption: err = %v, want a hard error", err)
	}
	writeLines(t, filepath.Join(dir, "trace-0.jsonl"), sealed0, "")

	// Mid-file corruption in the active file is also a hard error.
	var b strings.Builder
	j, _ := json.Marshal(live[0])
	b.Write(j)
	b.WriteString("\n{corrupt}\n")
	j, _ = json.Marshal(live[1])
	b.Write(j)
	b.WriteByte('\n')
	if err := os.WriteFile(active, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(active); err == nil || errors.Is(err, journal.ErrTruncated) {
		t.Fatalf("mid-file corruption: err = %v, want a hard error", err)
	}

	// A missing trace is empty, not broken.
	events, err = ReadTrace(filepath.Join(dir, "never-traced.jsonl"))
	if err != nil || len(events) != 0 {
		t.Fatalf("missing trace: events=%d err=%v, want 0, nil", len(events), err)
	}
}

func TestSummarizePercentiles(t *testing.T) {
	durs := make([]float64, 100)
	for i := range durs {
		durs[i] = float64(i + 1) // 1..100
	}
	s := summarize(durs)
	if s.Count != 100 || s.P50Ms != 50 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Fatalf("summary = %+v", s)
	}
	empty := summarize(nil)
	if empty.Count != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	one := summarize([]float64{7})
	if one.P50Ms != 7 || one.P99Ms != 7 || one.MeanMs != 7 {
		t.Fatalf("single summary = %+v", one)
	}
}
