package analysis

import (
	"encoding/json"
	"testing"

	"rldecide/internal/obs"
	obspan "rldecide/internal/obs/span"
)

// causal emits one KindSpan event as a span-recording daemon would.
func causal(study string, trial int, name, worker string, durMs float64) obs.Event {
	return obs.Event{
		Kind:   obs.KindSpan,
		Study:  study,
		Trial:  trial,
		Name:   name,
		Worker: worker,
		DurMs:  durMs,
		Status: "ok",
	}
}

func TestAnalyzeTraceCriticalPath(t *testing.T) {
	var events []obs.Event
	// Trial 1: fleet-dispatched, objective-dominant.
	//   trial 100ms ⊃ dispatch 80ms ⊃ objective 60ms; journal 5ms after.
	events = append(events,
		causal("s1", 1, obspan.NameTrial, "w1", 100),
		causal("s1", 1, obspan.NameDispatch, "w1", 80),
		causal("s1", 1, obspan.NameObjective, "w1", 60),
		causal("s1", 1, obspan.NameJournal, "", 5),
	)
	// Trial 2: queue-dominant — long lease wait before a short dispatch.
	events = append(events,
		causal("s1", 2, obspan.NameTrial, "w2", 100),
		causal("s1", 2, obspan.NameDispatch, "w2", 20),
		causal("s1", 2, obspan.NameObjective, "w2", 10),
		causal("s1", 2, obspan.NameJournal, "", 1),
	)
	// Trial 3: local execution — no dispatch span at all.
	events = append(events,
		causal("s1", 3, obspan.NameTrial, "local", 50),
		causal("s1", 3, obspan.NameObjective, "", 45),
		causal("s1", 3, obspan.NameJournal, "", 2),
	)
	// Study/place/run spans must not create breakdown rows; nor must a
	// trial with no trial span (still running).
	events = append(events,
		causal("s1", 0, obspan.NameStudy, "", 500),
		causal("s1", 0, obspan.NamePlace, "", 3),
		causal("s1", 1, obspan.NameRun, "w1", 70),
		causal("s1", 9, obspan.NameObjective, "", 30),
	)

	rep := AnalyzeTrace(events, TraceOptions{Study: "s1"})
	if len(rep.CriticalPath) != 3 {
		t.Fatalf("critical path rows = %+v, want 3", rep.CriticalPath)
	}
	p1, p2, p3 := rep.CriticalPath[0], rep.CriticalPath[1], rep.CriticalPath[2]

	if p1.Trial != 1 || p1.Worker != "w1" || p1.TotalMs != 105 {
		t.Fatalf("trial 1 row: %+v", p1)
	}
	if p1.QueueMs != 20 || p1.DispatchMs != 20 || p1.ObjectiveMs != 60 || p1.JournalMs != 5 {
		t.Fatalf("trial 1 decomposition: %+v", p1)
	}
	if p1.Dominant != "objective" {
		t.Fatalf("trial 1 dominant = %q, want objective", p1.Dominant)
	}

	if p2.Trial != 2 || p2.QueueMs != 80 || p2.DispatchMs != 10 || p2.Dominant != "queue" {
		t.Fatalf("trial 2 row: %+v", p2)
	}

	if p3.Trial != 3 || p3.DispatchMs != 0 || p3.QueueMs != 5 || p3.ObjectiveMs != 45 {
		t.Fatalf("trial 3 (local) row: %+v", p3)
	}
	if p3.Dominant != "objective" || p3.TotalMs != 52 {
		t.Fatalf("trial 3 dominant/total: %+v", p3)
	}

	// Determinism: identical streams render byte-identical reports.
	a, _ := json.Marshal(AnalyzeTrace(events, TraceOptions{Study: "s1"}))
	b, _ := json.Marshal(AnalyzeTrace(events, TraceOptions{Study: "s1"}))
	if string(a) != string(b) {
		t.Fatalf("critical path not deterministic:\n%s\n%s", a, b)
	}
}

// TestStragglerDominantAttribution joins the span-derived breakdown onto
// the straggler list: a flagged trial names its dominant component.
func TestStragglerDominantAttribution(t *testing.T) {
	var events []obs.Event
	// Four trials via start/done pairs; trial 4 is the 10x straggler.
	events = append(events, span("s1", 1, "a", 0, 10)...)
	events = append(events, span("s1", 2, "a", 5, 10)...)
	events = append(events, span("s1", 3, "b", 10, 12)...)
	events = append(events, span("s1", 4, "b", 15, 100)...)
	// Causal spans for the straggler: nearly all of it was queue wait.
	events = append(events,
		causal("s1", 4, obspan.NameTrial, "b", 100),
		causal("s1", 4, obspan.NameDispatch, "b", 15),
		causal("s1", 4, obspan.NameObjective, "b", 12),
		causal("s1", 4, obspan.NameJournal, "", 1),
	)

	rep := AnalyzeTrace(events, TraceOptions{})
	if len(rep.Stragglers) != 1 {
		t.Fatalf("stragglers = %+v", rep.Stragglers)
	}
	if got := rep.Stragglers[0].Dominant; got != "queue" {
		t.Fatalf("straggler dominant = %q, want queue", got)
	}
	// Without span events the field stays empty (old streams parse as
	// before).
	rep = AnalyzeTrace(events[:8], TraceOptions{})
	if len(rep.Stragglers) != 1 || rep.Stragglers[0].Dominant != "" {
		t.Fatalf("spanless straggler = %+v", rep.Stragglers)
	}
}
