package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Envelope is the on-disk sidecar format for a cached analysis report:
// the report itself plus the fingerprint of the inputs it was computed
// from, so a cache hit can be validated against the current artifacts
// without recomputing anything.
type Envelope struct {
	Kind        string          `json:"kind"`
	Study       string          `json:"study"`
	Fingerprint string          `json:"fingerprint"`
	Report      json.RawMessage `json:"report"`
}

// Fingerprint summarizes a set of input files as "name:size" pairs in
// sorted order. Sizes only — analyses read append-only journals, where
// growth is the only mutation that matters, and hashing multi-megabyte
// trace files on every cache probe would cost more than some analyses.
// Missing files contribute "name:-" so appearance or disappearance also
// invalidates.
func Fingerprint(paths ...string) string {
	parts := make([]string, 0, len(paths))
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			parts = append(parts, filepath.Base(p)+":-")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%d", filepath.Base(p), st.Size()))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// CachePath names the sidecar file for one study's analysis kind,
// alongside the study's other artifacts.
func CachePath(dir, study, kind string) string {
	return filepath.Join(dir, study+".analysis-"+kind+".json")
}

// LoadCached reads a sidecar envelope and returns its report if the
// stored fingerprint matches fingerprint. Any miss — absent file,
// unparsable envelope, stale fingerprint — returns (nil, false); the
// cache never turns an analysis into an error.
func LoadCached(path, kind, fingerprint string) (json.RawMessage, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, false
	}
	if env.Kind != kind || env.Fingerprint != fingerprint || len(env.Report) == 0 {
		return nil, false
	}
	return env.Report, true
}

// SaveCached writes a sidecar envelope atomically (tmp + rename), so a
// concurrent reader never observes a torn cache file.
func SaveCached(path, kind, study, fingerprint string, report any) error {
	raw, err := json.Marshal(report)
	if err != nil {
		return err
	}
	b, err := json.Marshal(Envelope{Kind: kind, Study: study, Fingerprint: fingerprint, Report: raw})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
