package analysis

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"rldecide/internal/journal"
	"rldecide/internal/obs"
)

// ReadEvents decodes a JSONL trace stream with the journal's torn-tail
// tolerance: a malformed final line (the signature of a crash mid-flush)
// yields the valid event prefix plus an error wrapping
// journal.ErrTruncated, while a malformed line followed by further
// events is corruption and fails the read. Analyzers treat ErrTruncated
// as "complete up to the crash" — a dying daemon never breaks analysis.
func ReadEvents(r io.Reader) ([]obs.Event, error) {
	var out []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	var badErr error
	badLine := 0
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if badErr != nil {
			return nil, fmt.Errorf("analysis: trace line %d: %w", badLine, badErr)
		}
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			badErr = err
			badLine = line
			continue
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	if badErr != nil {
		return out, fmt.Errorf("analysis: trace line %d: %v: %w", badLine, badErr, journal.ErrTruncated)
	}
	return out, nil
}

// ReadTrace loads a trace stream from disk including rotated segments
// (obs.TraceFiles order: sealed <base>-<n>.jsonl, then the active file).
// Rotation happens between tracer flushes, so only the last file can
// carry a torn tail in practice; the tolerance is applied there, exactly
// like journal.ReadSegmented. A missing path yields no events and no
// error — a daemon that never traced is empty, not broken.
func ReadTrace(path string) ([]obs.Event, error) {
	files, err := obs.TraceFiles(path)
	if err != nil {
		return nil, err
	}
	var out []obs.Event
	for i, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		evs, err := ReadEvents(f)
		_ = f.Close()
		out = append(out, evs...)
		if err != nil {
			if i == len(files)-1 && errors.Is(err, journal.ErrTruncated) {
				// Torn tail of the active file: the valid prefix stands.
				return out, fmt.Errorf("analysis: %s: %w", file, journal.ErrTruncated)
			}
			if errors.Is(err, journal.ErrTruncated) {
				// A "tail" in a sealed segment is corruption, not a crash
				// artifact — report it hard (%v strips the tolerable wrap).
				return nil, fmt.Errorf("analysis: %s: sealed segment is truncated: %v", file, err)
			}
			return nil, fmt.Errorf("analysis: %s: %w", file, err)
		}
	}
	return out, nil
}
