// Package analysis is the decision-analysis subsystem: it turns the
// artifacts a finished (or running) study already produces — trace
// streams, trial journals, recorded trajectories — into decisions for
// the practitioner. Three analyzers, all deterministic and all off the
// result path (they only ever read):
//
//   - Trace analysis (AnalyzeTrace): per-trial and per-worker span
//     latency summaries (p50/p90/p99) from the observability trace
//     stream, with straggler flagging (trials slower than k·p50).
//   - Trajectory attribution (AnalyzeAttribution): cluster-and-ablate
//     scoring of which recorded trajectories most influenced the final
//     policy, over fixed-dimension trajectory embeddings.
//   - Counterfactual rollouts (AnalyzeCounterfactuals): branch recorded
//     episodes at saved decision points (the gym.StatefulEnv
//     snapshot/restore seam) under every alternative action and rank
//     decision points by return divergence.
//
// Every analyzer maps identical inputs to byte-identical reports:
// iteration orders are canonical, clustering is initialized without
// randomness, and rollout branches draw common random numbers from
// seeds derived deterministically from the recorded episode. That is
// what lets studyd cache reports in sidecar files and serve them over
// HTTP with the same replay guarantees as journals.
package analysis

import "sort"

// SpanSummary describes a population of span durations in milliseconds.
type SpanSummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// summarize computes a SpanSummary over durations (destructively sorts).
func summarize(durations []float64) SpanSummary {
	if len(durations) == 0 {
		return SpanSummary{}
	}
	sort.Float64s(durations)
	sum := 0.0
	for _, d := range durations {
		sum += d
	}
	n := len(durations)
	return SpanSummary{
		Count:  n,
		MeanMs: sum / float64(n),
		P50Ms:  percentile(durations, 0.50),
		P90Ms:  percentile(durations, 0.90),
		P99Ms:  percentile(durations, 0.99),
		MaxMs:  durations[n-1],
	}
}

// percentile returns the nearest-rank percentile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)) + 0.5)
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
