package analysis

import (
	"sort"

	"rldecide/internal/obs"
	obspan "rldecide/internal/obs/span"
)

// TraceOptions tunes AnalyzeTrace. Zero values take defaults.
type TraceOptions struct {
	// Study filters the stream to one study's events ("" keeps all).
	Study string `json:"study,omitempty"`
	// StragglerK flags trials slower than K times the p50 trial duration
	// (default 3; straggler detection needs at least 4 finished trials).
	StragglerK float64 `json:"straggler_k,omitempty"`
}

// WorkerSummary aggregates the trial spans attributed to one worker.
type WorkerSummary struct {
	Worker string      `json:"worker"`
	Trials SpanSummary `json:"trials"`
}

// Straggler is a trial whose duration exceeded StragglerK times the p50.
type Straggler struct {
	Study      string  `json:"study,omitempty"`
	Trial      int     `json:"trial"`
	Worker     string  `json:"worker,omitempty"`
	DurationMs float64 `json:"duration_ms"`
	// Ratio is DurationMs over the population p50.
	Ratio float64 `json:"ratio"`
	// Dominant names the critical-path component ("queue", "dispatch",
	// "objective", "journal") that took the largest share of the trial —
	// set when the stream carries causal span events (daemon -spans), so
	// a straggler is attributed, not just flagged.
	Dominant string `json:"dominant,omitempty"`
}

// PathBreakdown is one trial's critical path decomposed from its causal
// spans: where the wall-clock went between the scheduler proposing the
// trial and its journal append landing.
type PathBreakdown struct {
	Study  string `json:"study,omitempty"`
	Trial  int    `json:"trial"`
	Worker string `json:"worker,omitempty"`
	// TotalMs is the trial span plus the journal append.
	TotalMs float64 `json:"total_ms"`
	// QueueMs is time inside the trial span not covered by dispatch (or,
	// locally, objective) work — executor lease wait, mostly.
	QueueMs float64 `json:"queue_ms"`
	// DispatchMs is dispatch RTT beyond the objective itself: transport,
	// worker queueing, spec decode, plus any failed attempts.
	DispatchMs float64 `json:"dispatch_ms"`
	// ObjectiveMs is objective execution proper (local or worker-side).
	ObjectiveMs float64 `json:"objective_ms"`
	// JournalMs is the finished trial's journal append.
	JournalMs float64 `json:"journal_ms"`
	// Dominant names the largest component above.
	Dominant string `json:"dominant"`
}

// TraceReport is the trace analyzer's output: span latency summaries per
// population and per worker, plus the straggler list, all in canonical
// (sorted) order so identical streams render byte-identical reports.
type TraceReport struct {
	Study      string          `json:"study,omitempty"`
	Events     int             `json:"events"`
	Studies    []string        `json:"studies,omitempty"`
	Trials     SpanSummary     `json:"trials"`
	Dispatches SpanSummary     `json:"dispatches"`
	Workers    []WorkerSummary `json:"workers,omitempty"`
	StragglerK float64         `json:"straggler_k"`
	Stragglers []Straggler     `json:"stragglers,omitempty"`
	// CriticalPath decomposes each trial's latency from causal span
	// events (present only when the stream carries them), sorted by
	// (study, trial).
	CriticalPath []PathBreakdown `json:"critical_path,omitempty"`
}

// trialKey identifies one trial span across studies.
type trialKey struct {
	study string
	trial int
}

// dispatchKey identifies one dispatch attempt.
type dispatchKey struct {
	study   string
	trial   int
	attempt int
}

// AnalyzeTrace summarizes a trace stream: trial spans (trial_start →
// trial_done), dispatch spans (dispatch → dispatch_done), per-worker
// latency distributions, and stragglers. Durations come from the bus's
// monotonic t_ms stamps; unmatched starts (trials still running, or cut
// off by a torn tail) are simply not counted.
func AnalyzeTrace(events []obs.Event, opts TraceOptions) TraceReport {
	if opts.StragglerK <= 0 {
		opts.StragglerK = 3
	}
	rep := TraceReport{Study: opts.Study, StragglerK: opts.StragglerK}

	type span struct {
		start  float64
		end    float64
		worker string
		closed bool
	}
	trials := map[trialKey]*span{}
	dispatches := map[dispatchKey]*span{}
	studies := map[string]bool{}
	var trialOrder []trialKey

	// Causal span accumulation (present only when a daemon ran with
	// -spans). Durations are summed per component so retried dispatches
	// count every attempt.
	type pathAcc struct {
		worker      string
		hasTrial    bool
		trialMs     float64
		dispatchMs  float64
		objectiveMs float64
		journalMs   float64
	}
	paths := map[trialKey]*pathAcc{}
	var pathOrder []trialKey

	for _, ev := range events {
		if opts.Study != "" && ev.Study != opts.Study {
			continue
		}
		rep.Events++
		if ev.Study != "" {
			studies[ev.Study] = true
		}
		switch ev.Kind {
		case obs.KindTrialStart:
			k := trialKey{ev.Study, ev.Trial}
			if _, ok := trials[k]; !ok {
				trialOrder = append(trialOrder, k)
			}
			trials[k] = &span{start: ev.TMs}
		case obs.KindTrialDone:
			if s, ok := trials[trialKey{ev.Study, ev.Trial}]; ok && !s.closed {
				s.end = ev.TMs
				s.worker = ev.Worker
				s.closed = true
			}
		case obs.KindDispatch:
			dispatches[dispatchKey{ev.Study, ev.Trial, ev.Attempt}] = &span{start: ev.TMs}
		case obs.KindDispatchEnd:
			if s, ok := dispatches[dispatchKey{ev.Study, ev.Trial, ev.Attempt}]; ok && !s.closed {
				s.end = ev.TMs
				s.closed = true
			}
		case obs.KindSpan:
			switch ev.Name {
			case obspan.NameTrial, obspan.NameDispatch, obspan.NameObjective, obspan.NameJournal:
			default:
				continue // study/place/run spans are not per-trial components
			}
			k := trialKey{ev.Study, ev.Trial}
			acc, ok := paths[k]
			if !ok {
				acc = &pathAcc{}
				paths[k] = acc
				pathOrder = append(pathOrder, k)
			}
			switch ev.Name {
			case obspan.NameTrial:
				acc.hasTrial = true
				acc.trialMs += ev.DurMs
				if ev.Worker != "" {
					acc.worker = ev.Worker
				}
			case obspan.NameDispatch:
				acc.dispatchMs += ev.DurMs
				if acc.worker == "" {
					acc.worker = ev.Worker
				}
			case obspan.NameObjective:
				acc.objectiveMs += ev.DurMs
			case obspan.NameJournal:
				acc.journalMs += ev.DurMs
			}
		}
	}

	for s := range studies {
		rep.Studies = append(rep.Studies, s)
	}
	sort.Strings(rep.Studies)

	var trialDur []float64
	byWorker := map[string][]float64{}
	type closedTrial struct {
		key    trialKey
		worker string
		dur    float64
	}
	var closed []closedTrial
	for _, k := range trialOrder {
		s := trials[k]
		if !s.closed {
			continue
		}
		d := s.end - s.start
		trialDur = append(trialDur, d)
		byWorker[s.worker] = append(byWorker[s.worker], d)
		closed = append(closed, closedTrial{key: k, worker: s.worker, dur: d})
	}
	rep.Trials = summarize(trialDur)

	var dispatchDur []float64
	for _, s := range dispatches {
		if s.closed {
			dispatchDur = append(dispatchDur, s.end-s.start)
		}
	}
	rep.Dispatches = summarize(dispatchDur)

	workers := make([]string, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		rep.Workers = append(rep.Workers, WorkerSummary{Worker: w, Trials: summarize(byWorker[w])})
	}

	// Critical path: decompose each spanned trial. The trial span covers
	// queue wait plus dispatch (or local objective) work; the journal
	// append happens after the trial wrapper returns, so it adds on top.
	dominant := map[trialKey]string{}
	for _, k := range pathOrder {
		acc := paths[k]
		if !acc.hasTrial {
			continue // incomplete tree (trial still running, torn tail)
		}
		clamp := func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		}
		pb := PathBreakdown{
			Study:       k.study,
			Trial:       k.trial,
			Worker:      acc.worker,
			TotalMs:     acc.trialMs + acc.journalMs,
			ObjectiveMs: acc.objectiveMs,
			JournalMs:   acc.journalMs,
		}
		if acc.dispatchMs > 0 {
			pb.DispatchMs = clamp(acc.dispatchMs - acc.objectiveMs)
			pb.QueueMs = clamp(acc.trialMs - acc.dispatchMs)
		} else {
			pb.QueueMs = clamp(acc.trialMs - acc.objectiveMs)
		}
		// Fixed evaluation order + strict-greater keeps ties deterministic.
		pb.Dominant = "queue"
		best := pb.QueueMs
		for _, c := range []struct {
			name string
			ms   float64
		}{{"dispatch", pb.DispatchMs}, {"objective", pb.ObjectiveMs}, {"journal", pb.JournalMs}} {
			if c.ms > best {
				pb.Dominant, best = c.name, c.ms
			}
		}
		dominant[k] = pb.Dominant
		rep.CriticalPath = append(rep.CriticalPath, pb)
	}
	sort.Slice(rep.CriticalPath, func(i, j int) bool {
		a, b := rep.CriticalPath[i], rep.CriticalPath[j]
		if a.Study != b.Study {
			return a.Study < b.Study
		}
		return a.Trial < b.Trial
	})

	// Straggler flagging needs a meaningful p50: require a few trials.
	if len(closed) >= 4 && rep.Trials.P50Ms > 0 {
		cut := opts.StragglerK * rep.Trials.P50Ms
		for _, c := range closed {
			if c.dur > cut {
				rep.Stragglers = append(rep.Stragglers, Straggler{
					Study:      c.key.study,
					Trial:      c.key.trial,
					Worker:     c.worker,
					DurationMs: c.dur,
					Ratio:      c.dur / rep.Trials.P50Ms,
					Dominant:   dominant[c.key],
				})
			}
		}
		sort.Slice(rep.Stragglers, func(i, j int) bool {
			a, b := rep.Stragglers[i], rep.Stragglers[j]
			if a.Ratio > b.Ratio {
				return true
			}
			if a.Ratio < b.Ratio {
				return false
			}
			if a.Study != b.Study {
				return a.Study < b.Study
			}
			return a.Trial < b.Trial
		})
	}
	return rep
}
