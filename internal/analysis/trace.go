package analysis

import (
	"sort"

	"rldecide/internal/obs"
)

// TraceOptions tunes AnalyzeTrace. Zero values take defaults.
type TraceOptions struct {
	// Study filters the stream to one study's events ("" keeps all).
	Study string `json:"study,omitempty"`
	// StragglerK flags trials slower than K times the p50 trial duration
	// (default 3; straggler detection needs at least 4 finished trials).
	StragglerK float64 `json:"straggler_k,omitempty"`
}

// WorkerSummary aggregates the trial spans attributed to one worker.
type WorkerSummary struct {
	Worker string      `json:"worker"`
	Trials SpanSummary `json:"trials"`
}

// Straggler is a trial whose duration exceeded StragglerK times the p50.
type Straggler struct {
	Study      string  `json:"study,omitempty"`
	Trial      int     `json:"trial"`
	Worker     string  `json:"worker,omitempty"`
	DurationMs float64 `json:"duration_ms"`
	// Ratio is DurationMs over the population p50.
	Ratio float64 `json:"ratio"`
}

// TraceReport is the trace analyzer's output: span latency summaries per
// population and per worker, plus the straggler list, all in canonical
// (sorted) order so identical streams render byte-identical reports.
type TraceReport struct {
	Study      string          `json:"study,omitempty"`
	Events     int             `json:"events"`
	Studies    []string        `json:"studies,omitempty"`
	Trials     SpanSummary     `json:"trials"`
	Dispatches SpanSummary     `json:"dispatches"`
	Workers    []WorkerSummary `json:"workers,omitempty"`
	StragglerK float64         `json:"straggler_k"`
	Stragglers []Straggler     `json:"stragglers,omitempty"`
}

// trialKey identifies one trial span across studies.
type trialKey struct {
	study string
	trial int
}

// dispatchKey identifies one dispatch attempt.
type dispatchKey struct {
	study   string
	trial   int
	attempt int
}

// AnalyzeTrace summarizes a trace stream: trial spans (trial_start →
// trial_done), dispatch spans (dispatch → dispatch_done), per-worker
// latency distributions, and stragglers. Durations come from the bus's
// monotonic t_ms stamps; unmatched starts (trials still running, or cut
// off by a torn tail) are simply not counted.
func AnalyzeTrace(events []obs.Event, opts TraceOptions) TraceReport {
	if opts.StragglerK <= 0 {
		opts.StragglerK = 3
	}
	rep := TraceReport{Study: opts.Study, StragglerK: opts.StragglerK}

	type span struct {
		start  float64
		end    float64
		worker string
		closed bool
	}
	trials := map[trialKey]*span{}
	dispatches := map[dispatchKey]*span{}
	studies := map[string]bool{}
	var trialOrder []trialKey

	for _, ev := range events {
		if opts.Study != "" && ev.Study != opts.Study {
			continue
		}
		rep.Events++
		if ev.Study != "" {
			studies[ev.Study] = true
		}
		switch ev.Kind {
		case obs.KindTrialStart:
			k := trialKey{ev.Study, ev.Trial}
			if _, ok := trials[k]; !ok {
				trialOrder = append(trialOrder, k)
			}
			trials[k] = &span{start: ev.TMs}
		case obs.KindTrialDone:
			if s, ok := trials[trialKey{ev.Study, ev.Trial}]; ok && !s.closed {
				s.end = ev.TMs
				s.worker = ev.Worker
				s.closed = true
			}
		case obs.KindDispatch:
			dispatches[dispatchKey{ev.Study, ev.Trial, ev.Attempt}] = &span{start: ev.TMs}
		case obs.KindDispatchEnd:
			if s, ok := dispatches[dispatchKey{ev.Study, ev.Trial, ev.Attempt}]; ok && !s.closed {
				s.end = ev.TMs
				s.closed = true
			}
		}
	}

	for s := range studies {
		rep.Studies = append(rep.Studies, s)
	}
	sort.Strings(rep.Studies)

	var trialDur []float64
	byWorker := map[string][]float64{}
	type closedTrial struct {
		key    trialKey
		worker string
		dur    float64
	}
	var closed []closedTrial
	for _, k := range trialOrder {
		s := trials[k]
		if !s.closed {
			continue
		}
		d := s.end - s.start
		trialDur = append(trialDur, d)
		byWorker[s.worker] = append(byWorker[s.worker], d)
		closed = append(closed, closedTrial{key: k, worker: s.worker, dur: d})
	}
	rep.Trials = summarize(trialDur)

	var dispatchDur []float64
	for _, s := range dispatches {
		if s.closed {
			dispatchDur = append(dispatchDur, s.end-s.start)
		}
	}
	rep.Dispatches = summarize(dispatchDur)

	workers := make([]string, 0, len(byWorker))
	for w := range byWorker {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		rep.Workers = append(rep.Workers, WorkerSummary{Worker: w, Trials: summarize(byWorker[w])})
	}

	// Straggler flagging needs a meaningful p50: require a few trials.
	if len(closed) >= 4 && rep.Trials.P50Ms > 0 {
		cut := opts.StragglerK * rep.Trials.P50Ms
		for _, c := range closed {
			if c.dur > cut {
				rep.Stragglers = append(rep.Stragglers, Straggler{
					Study:      c.key.study,
					Trial:      c.key.trial,
					Worker:     c.worker,
					DurationMs: c.dur,
					Ratio:      c.dur / rep.Trials.P50Ms,
				})
			}
		}
		sort.Slice(rep.Stragglers, func(i, j int) bool {
			a, b := rep.Stragglers[i], rep.Stragglers[j]
			if a.Ratio > b.Ratio {
				return true
			}
			if a.Ratio < b.Ratio {
				return false
			}
			if a.Study != b.Study {
				return a.Study < b.Study
			}
			return a.Trial < b.Trial
		})
	}
	return rep
}
