// Package airdrop implements the Airdrop Package Delivery Simulator of the
// paper: a gym environment in which an agent steers a parachute canopy to a
// precision landing on a target.
//
// The physics follows a quasi-steady glide model with three coupled parts:
//
//   - planar kinematics: the canopy advances at airspeed V along heading ψ
//     and descends at rate w, drifting with the wind;
//   - turn dynamics: the steering action deflects a brake line, driving the
//     turn rate ψ̇ through first-order lag dynamics;
//   - payload pendulum: the package swings under the canopy with natural
//     frequency √(g/L), excited by turning (centripetal forcing). This fast
//     oscillatory mode is what makes the Runge-Kutta order matter: at the
//     solver step used by the simulator, a 3rd-order method shows visible
//     local truncation error while the 8th-order method is essentially
//     exact.
//
// As in the paper, the Runge-Kutta order (3, 5 or 8 — the SciPy solve_ivp
// family) is an environment parameter trading computation time against the
// accuracy of the computed dynamics. The integrator's *genuine* embedded /
// Richardson local-error estimate is surfaced as solution uncertainty on
// the observation, so lower orders degrade the information the agent
// steers by.
package airdrop

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rldecide/internal/gym"
	"rldecide/internal/mathx"
	"rldecide/internal/ode"
)

// State-vector layout for the ODE system.
const (
	iPX     = iota // x position (units)
	iPY            // y position
	iAlt           // altitude
	iPsi           // heading (rad)
	iPsiDot        // turn rate (rad/s)
	iPhi           // pendulum swing angle (rad)
	iPhiDot        // pendulum swing rate (rad/s)
	stateDim
)

// ObsDim is the dimension of the observation vector.
const ObsDim = 10

// Wind configures the wind model.
type Wind struct {
	Enabled   bool    // steady wind on/off (paper: disabled for the study)
	Speed     float64 // steady wind speed (units/s)
	Direction float64 // steady wind direction (rad)
	Gusts     bool    // enable random gusts
	GustProb  float64 // per-control-step gust occurrence probability
	GustSpeed float64 // gust magnitude (units/s)
}

// Config parameterizes the simulator. NewConfig returns the defaults used
// by the paper's campaign; zero values in a hand-built Config are replaced
// by those defaults on New.
type Config struct {
	// RKOrder selects the Runge-Kutta method (3, 5 or 8).
	RKOrder int
	// ControlDt is the agent's decision period in seconds.
	ControlDt float64
	// SolverStep is the ODE solver step inside one control period.
	SolverStep float64
	// AltMin, AltMax bound the random drop altitude (paper: 30–1000).
	AltMin, AltMax float64
	// Wind configures steady wind and gusts.
	Wind Wind
	// Airspeed is the canopy forward speed (units/s).
	Airspeed float64
	// Descent is the sink rate (units/s).
	Descent float64
	// TurnGain and TurnDamp shape the turn-rate dynamics
	// ψ̈ = TurnGain·u − TurnDamp·ψ̇.
	TurnGain, TurnDamp float64
	// PendulumLen is the payload suspension length (sets the fast mode).
	PendulumLen float64
	// PendulumDamp damps the swing mode.
	PendulumDamp float64
	// RewardScale divides the landing miss distance in the terminal
	// reward: r = −dist/RewardScale.
	RewardScale float64
	// NoiseGain scales the solver-error-driven observation uncertainty.
	NoiseGain float64
	// MaxSteps truncates pathological episodes (safety net).
	MaxSteps int
	// Continuous switches the action space from Discrete(3) to
	// Box([-1,1]): continuous brake deflection.
	Continuous bool
}

// NewConfig returns the default simulator configuration: RK order 3, wind
// disabled, drop altitude in [30, 1000] — the paper's case-study setup.
func NewConfig() Config {
	return Config{
		RKOrder:      3,
		ControlDt:    1.0,
		SolverStep:   0.5,
		AltMin:       30,
		AltMax:       1000,
		Airspeed:     15,
		Descent:      7.5,
		TurnGain:     0.9,
		TurnDamp:     1.6,
		PendulumLen:  3.0,
		PendulumDamp: 0.35,
		RewardScale:  100,
		NoiseGain:    2.4,
		MaxSteps:     400,
		Wind: Wind{
			Speed:     3,
			Direction: 0,
			GustProb:  0.05,
			GustSpeed: 4,
		},
	}
}

func (c *Config) fillDefaults() {
	d := NewConfig()
	if c.RKOrder == 0 {
		c.RKOrder = d.RKOrder
	}
	if c.ControlDt == 0 {
		c.ControlDt = d.ControlDt
	}
	if c.SolverStep == 0 {
		c.SolverStep = d.SolverStep
	}
	if c.AltMin == 0 {
		c.AltMin = d.AltMin
	}
	if c.AltMax == 0 {
		c.AltMax = d.AltMax
	}
	if c.Airspeed == 0 {
		c.Airspeed = d.Airspeed
	}
	if c.Descent == 0 {
		c.Descent = d.Descent
	}
	if c.TurnGain == 0 {
		c.TurnGain = d.TurnGain
	}
	if c.TurnDamp == 0 {
		c.TurnDamp = d.TurnDamp
	}
	if c.PendulumLen == 0 {
		c.PendulumLen = d.PendulumLen
	}
	if c.PendulumDamp == 0 {
		c.PendulumDamp = d.PendulumDamp
	}
	if c.RewardScale == 0 {
		c.RewardScale = d.RewardScale
	}
	if c.NoiseGain == 0 {
		c.NoiseGain = d.NoiseGain
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
}

const gravity = 9.81

// Env is the airdrop simulator. It implements gym.Env and gym.Costed.
type Env struct {
	cfg     Config
	method  *ode.Method
	stepper *ode.Stepper
	esterr  *ode.ErrorEstimator
	rng     *rand.Rand

	state   [stateDim]float64
	wind    [2]float64 // current effective wind (steady + gust)
	gust    [2]float64 // decaying gust component
	t       float64
	steps   int
	landed  bool
	errLvl  float64 // running local-error estimate of the solver
	errTick int

	u    float64  // current brake command, read by rhs
	f    ode.Func // bound e.rhs, built once (closure-free Step)
	yerr [stateDim]float64
	obs  [ObsDim]float64 // reused observation buffer
}

// New returns a simulator with cfg (zero fields replaced by defaults),
// seeded with seed. It returns an error for unsupported RK orders.
func New(cfg Config, seed uint64) (*Env, error) {
	cfg.fillDefaults()
	m, err := ode.ByOrder(cfg.RKOrder)
	if err != nil {
		return nil, fmt.Errorf("airdrop: %w", err)
	}
	e := &Env{
		cfg:     cfg,
		method:  m,
		stepper: ode.NewStepper(m, stateDim),
		esterr:  ode.NewErrorEstimator(m, stateDim),
		rng:     mathx.NewRand(seed),
	}
	e.f = e.rhs
	return e, nil
}

// MustNew is New that panics on configuration errors; for tests and
// examples.
func MustNew(cfg Config, seed uint64) *Env {
	e, err := New(cfg, seed)
	if err != nil {
		panic(err)
	}
	return e
}

// Make returns a gym.EnvMaker producing simulators with cfg.
func Make(cfg Config) gym.EnvMaker {
	return func(seed uint64) gym.Env { return MustNew(cfg, seed) }
}

// Config returns the effective (default-filled) configuration.
func (e *Env) Config() Config { return e.cfg }

// Method returns the Runge-Kutta method in use.
func (e *Env) Method() *ode.Method { return e.method }

// ObservationSpace implements gym.Env.
func (e *Env) ObservationSpace() gym.Space { return gym.NewBox(ObsDim, -100, 100) }

// ActionSpace implements gym.Env.
func (e *Env) ActionSpace() gym.Space {
	if e.cfg.Continuous {
		return gym.NewBox(1, -1, 1)
	}
	return gym.Discrete{N: 3}
}

// Seed implements gym.Env.
func (e *Env) Seed(seed uint64) { e.rng = mathx.NewRand(seed) }

// Reset implements gym.Env: the package is dropped from a random altitude
// in [AltMin, AltMax], at a random bearing and a horizontal offset scaled
// to the reachable glide range, with a random initial heading.
func (e *Env) Reset() []float64 {
	alt := e.cfg.AltMin + e.rng.Float64()*(e.cfg.AltMax-e.cfg.AltMin)
	glideRange := e.cfg.Airspeed / e.cfg.Descent * alt
	dist := (0.10 + 0.40*e.rng.Float64()) * glideRange
	bearing := e.rng.Float64() * 2 * math.Pi

	e.state = [stateDim]float64{}
	e.state[iPX] = dist * math.Cos(bearing)
	e.state[iPY] = dist * math.Sin(bearing)
	e.state[iAlt] = alt
	e.state[iPsi] = e.rng.Float64() * 2 * math.Pi
	e.state[iPhi] = (e.rng.Float64()*2 - 1) * 0.05

	e.gust = [2]float64{}
	e.updateWind()
	e.t = 0
	e.steps = 0
	e.landed = false
	e.errLvl = 0
	e.errTick = 0
	metricEpisodes.Inc()
	return e.observe()
}

// updateWind refreshes the effective wind: steady component plus decaying
// gusts.
func (e *Env) updateWind() {
	w := e.cfg.Wind
	e.wind = [2]float64{}
	if !w.Enabled {
		return
	}
	e.wind[0] = w.Speed * math.Cos(w.Direction)
	e.wind[1] = w.Speed * math.Sin(w.Direction)
	if w.Gusts {
		// Exponential decay of the previous gust, new gusts with GustProb.
		e.gust[0] *= 0.85
		e.gust[1] *= 0.85
		if e.rng.Float64() < w.GustProb {
			dir := e.rng.Float64() * 2 * math.Pi
			e.gust[0] += w.GustSpeed * math.Cos(dir)
			e.gust[1] += w.GustSpeed * math.Sin(dir)
		}
		e.wind[0] += e.gust[0]
		e.wind[1] += e.gust[1]
	}
}

// rhs is the canopy ODE right-hand side. The brake command and wind are
// read from the Env (set before integration and constant within a control
// step) rather than captured in a closure, so Step allocates nothing: e.f
// is bound once at construction and reused for every solver call.
func (e *Env) rhs(t float64, y, dydt []float64) {
	cfg := &e.cfg
	u, wx, wy := e.u, e.wind[0], e.wind[1]
	// Sincos is bit-identical to separate Sin/Cos calls (same kernels), and
	// sinPhi is reused for the pendulum term, so this halves the trig work —
	// the dominant cost of the RHS — without changing a single result bit.
	sinPhi := math.Sin(y[iPhi])
	sinPsi, cosPsi := math.Sincos(y[iPsi])
	v := cfg.Airspeed * (1 - 0.15*math.Abs(sinPhi))
	dydt[iPX] = v*cosPsi + wx
	dydt[iPY] = v*sinPsi + wy
	dydt[iAlt] = -cfg.Descent * (1 + 0.1*y[iPhi]*y[iPhi])
	dydt[iPsi] = y[iPsiDot]
	dydt[iPsiDot] = cfg.TurnGain*u - cfg.TurnDamp*y[iPsiDot] + 0.15*y[iPhi]
	// Pendulum: gravity restoring + damping + centripetal forcing from
	// the turn.
	dydt[iPhi] = y[iPhiDot]
	dydt[iPhiDot] = -gravity/cfg.PendulumLen*sinPhi -
		cfg.PendulumDamp*y[iPhiDot] +
		y[iPsiDot]*v/cfg.PendulumLen*0.5
}

// Step implements gym.Env. The discrete actions are 0=rotate left,
// 1=straight, 2=rotate right (continuous mode: action[0] in [-1,1]).
func (e *Env) Step(action []float64) gym.StepResult {
	if e.landed {
		panic("airdrop: Step after episode end; call Reset")
	}
	metricSteps.Inc()
	e.u = e.command(action)
	e.updateWind()
	f := e.f

	// Refresh the solver-accuracy estimate periodically using the method's
	// genuine local error (embedded pair, or Richardson for RK8).
	if e.errTick%16 == 0 {
		e.errLvl = e.esterr.Estimate(f, e.t, e.state[:], e.cfg.SolverStep)
	}
	e.errTick++

	// Integrate one control period in fixed solver steps.
	remaining := e.cfg.ControlDt
	for remaining > 1e-9 {
		h := math.Min(e.cfg.SolverStep, remaining)
		e.t = e.stepper.Step(f, e.t, e.state[:], h, e.state[:], e.yerr[:])
		remaining -= h
		if e.state[iAlt] <= 0 {
			break
		}
	}
	e.steps++

	res := gym.StepResult{}
	if e.state[iAlt] <= 0 || e.steps >= e.cfg.MaxSteps {
		e.landed = true
		res.Done = true
		res.Truncated = e.state[iAlt] > 0
		res.Reward = -e.Miss() / e.cfg.RewardScale
	}
	res.Obs = e.observe()
	return res
}

// command maps the action to a brake deflection u in [-1,1].
func (e *Env) command(action []float64) float64 {
	if e.cfg.Continuous {
		return mathx.Clip(action[0], -1, 1)
	}
	switch int(action[0]) {
	case 0:
		return -1
	case 2:
		return 1
	default:
		return 0
	}
}

// Miss returns the current horizontal distance to the target (the origin).
func (e *Env) Miss() float64 {
	return math.Hypot(e.state[iPX], e.state[iPY])
}

// State returns a copy of the raw physical state (for tools and tests).
func (e *Env) State() []float64 {
	s := make([]float64, stateDim)
	copy(s, e.state[:])
	return s
}

// ErrLevel returns the current solver local-error estimate.
func (e *Env) ErrLevel() float64 { return e.errLvl }

// observe builds the observation: target-relative geometry, heading error,
// canopy rates and the pendulum state, perturbed by the solver-accuracy
// noise.
func (e *Env) observe() []float64 {
	dx := -e.state[iPX] // vector from package to target
	dy := -e.state[iPY]
	dist := math.Hypot(dx, dy)
	bearing := math.Atan2(dy, dx)
	hErr := angleDiff(bearing, e.state[iPsi])
	sinH, cosH := math.Sincos(hErr)
	tgo := e.state[iAlt] / e.cfg.Descent

	// Scales chosen so every component lives in roughly [-3, 3] — the
	// useful range of the tanh policy networks. The buffer is owned by the
	// Env and reused: the returned slice is valid until the next
	// Step/Reset, per the gym.StepResult contract.
	e.obs = [ObsDim]float64{
		dx / 300,
		dy / 300,
		dist / 300,
		sinH,
		cosH,
		e.state[iPsiDot],
		e.state[iPhi],
		e.state[iPhiDot],
		e.state[iAlt] / 300,
		tgo / 150,
	}
	obs := e.obs[:]
	if e.cfg.NoiseGain > 0 && e.errLvl > 0 {
		// Solution-accuracy uncertainty: the solver's local-error estimate
		// is mapped compressively (cube root) to an observation noise
		// scale, so the order-3/5/8 regimes (errors ~1e-3 / 1e-5 / 1e-7)
		// produce graded — not collapsed — landing-precision effects, as
		// in the paper's reward spreads.
		std := e.cfg.NoiseGain * math.Cbrt(e.errLvl)
		for i := range obs {
			obs[i] += e.rng.NormFloat64() * std
		}
	}
	return obs
}

// StepCost implements gym.Costed: the modeled CPU seconds of one control
// step. The per-order costs are calibrated against the paper's published
// computation times (46–85 min for 200k steps on 2–8 cores; DESIGN.md §5).
// They are NOT purely stage-proportional, mirroring the SciPy family the
// paper used: RK23 carries a relatively large method-independent per-step
// overhead, while DOP853 pays extra for its high-order error machinery on
// top of its 12 stages.
func (e *Env) StepCost() float64 {
	substeps := math.Ceil(e.cfg.ControlDt / e.cfg.SolverStep)
	var perStep float64
	switch e.cfg.RKOrder {
	case 3:
		perStep = costOrder3
	case 5:
		perStep = costOrder5
	case 8:
		perStep = costOrder8
	default:
		// Non-paper orders (RK4): interpolate stage-proportionally
		// between the calibrated anchors.
		perStep = costOrder3 + (costOrder5-costOrder3)*
			float64(e.method.Stages()-4)/3.0
	}
	return perStep * substeps / 2 // calibrated at the default 2 substeps
}

// Calibrated per-control-step CPU costs (seconds) at the default solver
// configuration.
const (
	costOrder3 = 0.0471
	costOrder5 = 0.0516
	costOrder8 = 0.0667
)

// angleDiff returns a-b wrapped to (-π, π].
func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Autopilot is a scripted proportional-derivative steering policy used to
// validate the physics and as a non-learning baseline: it turns toward the
// target bearing and, once close, circles to bleed altitude.
type Autopilot struct{}

// Shared, read-only discrete actions returned by Autopilot.Act. Callers
// must not mutate them.
var (
	actLeft     = []float64{0}
	actStraight = []float64{1}
	actRight    = []float64{2}
)

// Act returns the discrete action for obs. The returned slice is shared
// and read-only.
func (Autopilot) Act(obs []float64) []float64 {
	sinE, cosE := obs[3], obs[4]
	hErr := math.Atan2(sinE, cosE)
	psiDot := obs[5]
	dist := obs[2] * 300
	tgo := obs[9] * 150

	u := 1.8*hErr - 1.2*psiDot
	// If we will arrive far too early, spiral to waste altitude.
	if dist < 0.3*tgo*7.5 && dist < 60 && tgo > 20 {
		u = 1
	}
	switch {
	case u > 0.08:
		return actRight
	case u < -0.08:
		return actLeft
	default:
		return actStraight
	}
}
