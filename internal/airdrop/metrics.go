package airdrop

import "rldecide/internal/obs"

// Simulator instruments: one atomic add per control step / episode across
// every Env in the process. Off the physics path entirely — the RK
// integration and the zero-alloc step contract are untouched.
var (
	metricSteps = obs.Default.NewCounter("rldecide_env_steps_total",
		"Airdrop control steps simulated.")
	metricEpisodes = obs.Default.NewCounter("rldecide_env_episodes_total",
		"Airdrop episodes started (Reset calls).")
)
