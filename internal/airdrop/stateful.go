package airdrop

import (
	"fmt"

	"rldecide/internal/gym"
)

// snapDim is the airdrop snapshot layout: the 7-dimensional ODE state,
// the effective wind and decaying gust vectors, the simulation clock,
// the step counter, the landed flag, the solver-error estimate and its
// refresh tick, and the latched brake command.
const snapDim = stateDim + 2 + 2 + 6

// Snapshot implements gym.StatefulEnv. The RNG stream (observation
// noise, gust draws) is not captured — pair Restore with Seed for
// reproducible branches, per the gym.StatefulEnv contract.
func (e *Env) Snapshot(dst []float64) []float64 {
	dst = append(dst, e.state[:]...)
	dst = append(dst, e.wind[0], e.wind[1], e.gust[0], e.gust[1])
	landed := 0.0
	if e.landed {
		landed = 1
	}
	return append(dst, e.t, float64(e.steps), landed, e.errLvl, float64(e.errTick), e.u)
}

// Restore implements gym.StatefulEnv.
func (e *Env) Restore(snap []float64) error {
	if len(snap) != snapDim {
		return fmt.Errorf("airdrop: snapshot needs %d values, got %d", snapDim, len(snap))
	}
	copy(e.state[:], snap[:stateDim])
	e.wind = [2]float64{snap[stateDim], snap[stateDim+1]}
	e.gust = [2]float64{snap[stateDim+2], snap[stateDim+3]}
	rest := snap[stateDim+4:]
	e.t = rest[0]
	e.steps = int(rest[1])
	e.landed = rest[2] != 0
	e.errLvl = rest[3]
	e.errTick = int(rest[4])
	e.u = rest[5]
	return nil
}

var _ gym.StatefulEnv = (*Env)(nil)
