package airdrop

import (
	"math"
	"testing"

	"rldecide/internal/gym"
)

func TestNewRejectsBadOrder(t *testing.T) {
	cfg := NewConfig()
	cfg.RKOrder = 7
	if _, err := New(cfg, 1); err == nil {
		t.Fatal("RK order 7 should be rejected")
	}
}

func TestDefaultsFilled(t *testing.T) {
	e := MustNew(Config{}, 1)
	cfg := e.Config()
	if cfg.RKOrder != 3 || cfg.AltMax != 1000 || cfg.RewardScale != 100 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if e.Method().Order != 3 {
		t.Fatal("method order mismatch")
	}
}

func TestResetWithinAltitudeLimits(t *testing.T) {
	cfg := NewConfig()
	cfg.AltMin, cfg.AltMax = 30, 1000
	e := MustNew(cfg, 7)
	for i := 0; i < 50; i++ {
		e.Reset()
		alt := e.State()[iAlt]
		if alt < 30 || alt > 1000 {
			t.Fatalf("drop altitude %v outside [30,1000]", alt)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a := MustNew(NewConfig(), 42)
	b := MustNew(NewConfig(), 42)
	oa, ob := a.Reset(), b.Reset()
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed, different reset obs")
		}
	}
	ra := a.Step([]float64{1})
	rb := b.Step([]float64{1})
	for i := range ra.Obs {
		if ra.Obs[i] != rb.Obs[i] {
			t.Fatal("same seed, different step obs")
		}
	}
}

func TestAltitudeMonotonicallyDecreases(t *testing.T) {
	e := MustNew(NewConfig(), 3)
	e.Reset()
	prev := e.State()[iAlt]
	for i := 0; i < 200; i++ {
		res := e.Step([]float64{1})
		alt := e.State()[iAlt]
		if alt >= prev {
			t.Fatalf("altitude did not decrease: %v -> %v", prev, alt)
		}
		prev = alt
		if res.Done {
			return
		}
	}
	t.Fatal("episode never terminated")
}

func TestEpisodeTerminatesWithLandingReward(t *testing.T) {
	e := MustNew(NewConfig(), 5)
	e.Reset()
	for i := 0; i < 500; i++ {
		res := e.Step([]float64{1})
		if res.Done {
			if res.Reward > 0 {
				t.Fatalf("terminal reward must be <= 0: %v", res.Reward)
			}
			if res.Reward != -e.Miss()/e.Config().RewardScale {
				t.Fatalf("reward %v inconsistent with miss %v", res.Reward, e.Miss())
			}
			return
		}
		if res.Reward != 0 {
			t.Fatalf("non-terminal reward must be 0, got %v", res.Reward)
		}
	}
	t.Fatal("episode never terminated")
}

func TestTurnDynamics(t *testing.T) {
	cfg := NewConfig()
	cfg.AltMin, cfg.AltMax = 900, 1000
	e := MustNew(cfg, 11)
	e.Reset()
	psi0 := e.State()[iPsi]
	for i := 0; i < 3; i++ {
		e.Step([]float64{2}) // turn positive
	}
	dPos := angleDiff(e.State()[iPsi], psi0)
	e.Reset()
	psi0 = e.State()[iPsi]
	for i := 0; i < 3; i++ {
		e.Step([]float64{0}) // turn negative
	}
	dNeg := angleDiff(e.State()[iPsi], psi0)
	if dPos <= 0.1 {
		t.Fatalf("action 2 should increase heading, got delta %v", dPos)
	}
	if dNeg >= -0.1 {
		t.Fatalf("action 0 should decrease heading, got delta %v", dNeg)
	}
}

func TestWindCausesDrift(t *testing.T) {
	run := func(windOn bool) float64 {
		cfg := NewConfig()
		cfg.AltMin, cfg.AltMax = 500, 500.0001
		cfg.Wind.Enabled = windOn
		cfg.Wind.Speed = 8
		cfg.Wind.Direction = 0 // wind blowing +x
		cfg.NoiseGain = -1     // keep kinematics comparable
		e := MustNew(cfg, 99)
		e.Reset()
		for i := 0; i < 20; i++ {
			e.Step([]float64{1})
		}
		return e.State()[iPX]
	}
	withWind := run(true)
	noWind := run(false)
	if withWind-noWind < 50 {
		t.Fatalf("8 u/s wind for 20 s should push ~160 units: drift=%v", withWind-noWind)
	}
}

func TestGustsAddVariance(t *testing.T) {
	cfg := NewConfig()
	cfg.Wind.Enabled = true
	cfg.Wind.Gusts = true
	cfg.Wind.GustProb = 1
	cfg.Wind.GustSpeed = 6
	e := MustNew(cfg, 12)
	e.Reset()
	e.Step([]float64{1})
	g := math.Hypot(e.gust[0], e.gust[1])
	if g == 0 {
		t.Fatal("gust with probability 1 did not fire")
	}
}

func TestErrLevelDecreasesWithOrder(t *testing.T) {
	lvl := func(order int) float64 {
		cfg := NewConfig()
		cfg.RKOrder = order
		e := MustNew(cfg, 4)
		e.Reset()
		e.Step([]float64{2})
		return e.ErrLevel()
	}
	e3, e5, e8 := lvl(3), lvl(5), lvl(8)
	if !(e3 > e5 && e5 > e8) {
		t.Fatalf("solver error must fall with order: rk3=%g rk5=%g rk8=%g", e3, e5, e8)
	}
	if e3 == 0 || e8 == 0 {
		t.Fatalf("error estimates should be nonzero: %g %g", e3, e8)
	}
}

func TestStepCostIncreasesWithOrder(t *testing.T) {
	cost := func(order int) float64 {
		cfg := NewConfig()
		cfg.RKOrder = order
		return MustNew(cfg, 1).StepCost()
	}
	c3, c5, c8 := cost(3), cost(5), cost(8)
	if !(c3 < c5 && c5 < c8) {
		t.Fatalf("step cost must grow with order: %v %v %v", c3, c5, c8)
	}
}

func evalPolicy(t *testing.T, cfg Config, seed uint64, episodes int, act func(obs []float64) []float64) float64 {
	t.Helper()
	e := MustNew(cfg, seed)
	total := 0.0
	for ep := 0; ep < episodes; ep++ {
		obs := e.Reset()
		for {
			res := e.Step(act(obs))
			obs = res.Obs
			if res.Done {
				total += res.Reward
				break
			}
		}
	}
	return total / float64(episodes)
}

func TestAutopilotBeatsIdle(t *testing.T) {
	cfg := NewConfig()
	ap := Autopilot{}
	apReward := evalPolicy(t, cfg, 21, 40, ap.Act)
	idle := evalPolicy(t, cfg, 21, 40, func([]float64) []float64 { return []float64{1} })
	if apReward <= idle+0.5 {
		t.Fatalf("autopilot (%v) should clearly beat idle (%v)", apReward, idle)
	}
	if apReward < -2.0 {
		t.Fatalf("autopilot should land in the target region, got %v", apReward)
	}
}

func TestAutopilotBetterWithHighOrder(t *testing.T) {
	// The RK-order accuracy knob: with identical seeds and many episodes,
	// the order-8 solver should let the same controller land at least as
	// precisely as the order-3 solver.
	reward := func(order int) float64 {
		cfg := NewConfig()
		cfg.RKOrder = order
		return evalPolicy(t, cfg, 77, 60, Autopilot{}.Act)
	}
	r3, r8 := reward(3), reward(8)
	if r8 < r3-0.02 {
		t.Fatalf("order 8 (%v) should not land worse than order 3 (%v)", r8, r3)
	}
}

func TestContinuousMode(t *testing.T) {
	cfg := NewConfig()
	cfg.Continuous = true
	e := MustNew(cfg, 2)
	if _, ok := e.ActionSpace().(gym.Box); !ok {
		t.Fatal("continuous mode should expose a Box action space")
	}
	e.Reset()
	res := e.Step([]float64{0.5})
	if len(res.Obs) != ObsDim {
		t.Fatal("obs dim wrong")
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	cfg := NewConfig()
	cfg.AltMin, cfg.AltMax = 30, 31
	e := MustNew(cfg, 6)
	e.Reset()
	for i := 0; i < 100; i++ {
		if res := e.Step([]float64{1}); res.Done {
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Step after done should panic")
		}
	}()
	e.Step([]float64{1})
}

func TestMakeImplementsInterfaces(t *testing.T) {
	mk := Make(NewConfig())
	env := mk(5)
	if _, ok := env.(gym.Costed); !ok {
		t.Fatal("airdrop env must implement gym.Costed")
	}
	obs := env.Reset()
	if len(obs) != ObsDim {
		t.Fatalf("obs dim %d want %d", len(obs), ObsDim)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{math.Pi / 2, 0, math.Pi / 2},
		{0, math.Pi / 2, -math.Pi / 2},
		{3 * math.Pi, 0, math.Pi},
		{0.1, 2 * math.Pi, 0.1},
	}
	for _, c := range cases {
		if got := angleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("angleDiff(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkStepRK3(b *testing.B) { benchStep(b, 3) }
func BenchmarkStepRK5(b *testing.B) { benchStep(b, 5) }
func BenchmarkStepRK8(b *testing.B) { benchStep(b, 8) }

func benchStep(b *testing.B, order int) {
	cfg := NewConfig()
	cfg.RKOrder = order
	e := MustNew(cfg, 1)
	e.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Step([]float64{1})
		if res.Done {
			e.Reset()
		}
	}
}
