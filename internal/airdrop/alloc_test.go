package airdrop

import "testing"

// TestStepAllocsZero pins the steady-state allocation count of the
// environment hot path: after warmup, Step and Reset must not allocate.
// Every regression here multiplies across millions of campaign steps.
func TestStepAllocsZero(t *testing.T) {
	for _, order := range []int{3, 5, 8} {
		cfg := NewConfig()
		cfg.RKOrder = order
		e := MustNew(cfg, 1)
		e.Reset()
		action := []float64{1}
		// Warm up past the first error-estimate tick so its scratch exists.
		for i := 0; i < 32; i++ {
			if e.Step(action).Done {
				e.Reset()
			}
		}
		allocs := testing.AllocsPerRun(200, func() {
			if e.Step(action).Done {
				e.Reset()
			}
		})
		if allocs != 0 {
			t.Errorf("RK%d: %.1f allocs per Step, want 0", order, allocs)
		}
	}
}
