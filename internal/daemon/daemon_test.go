package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("alice=tok-a:4, bob=tok-b ,carol=tok-c:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Name: "alice", Token: "tok-a", Slots: 4},
		{Name: "bob", Token: "tok-b"},
		{Name: "carol", Token: "tok-c"},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	if tenants, err := ParseTenants("  "); err != nil || tenants != nil {
		t.Fatalf("blank spec: %v %v", tenants, err)
	}

	for name, spec := range map[string]string{
		"no-token":        "alice",
		"empty-token":     "alice=",
		"empty-token-quo": "alice=:3",
		"bad-slots":       "alice=tok:x",
		"negative-slots":  "alice=tok:-1",
		"dup-name":        "a=t1,a=t2",
		"dup-token":       "a=t,b=t",
	} {
		if _, err := ParseTenants(spec); err == nil {
			t.Errorf("%s (%q): expected parse error", name, spec)
		}
	}
}

func authedReq(token string) *http.Request {
	r := httptest.NewRequest(http.MethodPost, "/studies", nil)
	if token != "" {
		r.Header.Set("Authorization", "Bearer "+token)
	}
	return r
}

func TestAuthAuthenticate(t *testing.T) {
	tenants, err := ParseTenants("alice=tok-a:4,bob=tok-b:1")
	if err != nil {
		t.Fatal(err)
	}
	a := NewAuth("fallback", tenants)
	if !a.Enabled() {
		t.Fatal("auth with credentials reports disabled")
	}

	cases := []struct {
		token  string
		tenant string
		ok     bool
	}{
		{"tok-a", "alice", true},
		{"tok-b", "bob", true},
		{"fallback", "", true},
		{"nope", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		tenant, ok := a.Authenticate(authedReq(c.token))
		if tenant != c.tenant || ok != c.ok {
			t.Errorf("token %q: (%q,%v), want (%q,%v)", c.token, tenant, ok, c.tenant, c.ok)
		}
	}

	if got := a.Slots("alice"); got != 4 {
		t.Errorf("alice slots %d, want 4", got)
	}
	if got := a.Slots("nobody"); got != 0 {
		t.Errorf("unknown tenant slots %d, want 0", got)
	}
	names := a.Tenants()
	if len(names) != 2 || names[0].Name != "alice" || names[1].Name != "bob" {
		t.Errorf("tenant table not name-sorted: %+v", names)
	}

	// Disabled auth admits everyone as the anonymous tenant.
	var open *Auth
	if tenant, ok := open.Authenticate(authedReq("")); !ok || tenant != "" {
		t.Fatal("nil auth must be open")
	}
	if NewAuth("", nil).Enabled() {
		t.Fatal("empty auth reports enabled")
	}
}

func TestAuthRequireMiddleware(t *testing.T) {
	a := NewAuth("", []Tenant{{Name: "alice", Token: "tok-a", Slots: 2}})
	var sawTenant string
	h := a.RequireTenant(func(w http.ResponseWriter, r *http.Request, tenant string) {
		sawTenant = tenant
		WriteJSON(w, http.StatusOK, map[string]any{"ok": true})
	})

	rec := httptest.NewRecorder()
	h(rec, authedReq("tok-a"))
	if rec.Code != http.StatusOK || sawTenant != "alice" {
		t.Fatalf("authed call: %d tenant %q", rec.Code, sawTenant)
	}

	rec = httptest.NewRecorder()
	h(rec, authedReq("wrong"))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", rec.Code)
	}
	var apiErr APIError
	if err := json.NewDecoder(rec.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("401 body not an APIError: %v %+v", err, apiErr)
	}
}

func TestStateDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	got, err := StateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(got); err != nil || !fi.IsDir() {
		t.Fatalf("state dir not created: %v", err)
	}
	if _, err := StateDir(""); err == nil {
		t.Fatal("empty state dir accepted")
	}
}

// TestRunServesAndDrains exercises the shared lifecycle: Run serves until
// the context is cancelled, then calls drain before shutting the listener
// down.
func TestRunServesAndDrains(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]any{"ok": true})
	})

	drained := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- Run(ctx, addr, mux, 5*time.Second, func(context.Context) error {
			close(drained)
			return nil
		})
	}()

	url := fmt.Sprintf("http://%s/ping", addr)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	select {
	case <-drained:
	default:
		t.Fatal("drain was not called")
	}
}
