// Package daemon is the shared kernel every rldecide daemon embeds:
// bearer-token authentication (single-token or per-tenant with slot
// quotas), the JSON error/response helpers of the HTTP APIs, the debug
// listener (pprof + metrics) wiring, state-directory management, and the
// serve-then-gracefully-drain lifecycle. cmd/rldecide-serve,
// cmd/rldecide-worker and cmd/rldecide-router all build on this package
// instead of carrying their own copies of the plumbing, which is what
// makes adding another daemon to the control plane cheap.
//
// The kernel deliberately knows nothing about studies, trials or
// dispatch: it depends only on internal/obs (debug mux, registries), so
// every tier of the stack — serving daemons, workers, routers — can embed
// it without import cycles.
package daemon

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"rldecide/internal/obs"
)

// Core is the embeddable daemon kernel: identity, logging and auth. The
// zero value is usable (anonymous daemon, no auth, log.Printf).
type Core struct {
	// Name identifies the daemon instance. Sharded deployments set it
	// (it namespaces metric series with a `daemon` label and signs
	// journal-ownership manifests); single-daemon deployments may leave
	// it empty for backward-compatible unlabeled series.
	Name string
	// Auth guards mutating endpoints. Nil or disabled means open.
	Auth *Auth
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

// Printf logs through the configured sink (default log.Printf).
func (c *Core) Printf(format string, args ...any) {
	if c == nil || c.Logf == nil {
		log.Printf(format, args...)
		return
	}
	c.Logf(format, args...)
}

// StateDir ensures the daemon's state directory exists and returns its
// cleaned path.
func StateDir(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("daemon: state directory path is empty")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return "", err
	}
	return filepath.Clean(path), nil
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM — the
// shared shutdown trigger of every daemon main.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
}

// StartDebug serves the pprof suite plus the merged metric registries on
// addr from a background goroutine — the -debug-addr listener both
// daemons used to wire by hand. A listener failure is logged, never
// fatal: profiling must not take the daemon down. No-op when addr is "".
func (c *Core) StartDebug(addr string, regs ...*obs.Registry) {
	if addr == "" {
		return
	}
	srv := &http.Server{Addr: addr, Handler: obs.DebugMux(regs...)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			c.Printf("daemon: debug listener %s: %v", addr, err)
		}
	}()
	c.Printf("daemon: pprof + metrics on %s", addr)
}

// Run serves handler on addr until ctx is cancelled, then drains: drain
// (when non-nil) runs first with a grace deadline — cancelling runners,
// closing event buses — followed by the HTTP server's own shutdown. This
// is the lifecycle shape every daemon shares; a listener error surfaces
// immediately.
func Run(ctx context.Context, addr string, handler http.Handler, grace time.Duration, drain func(context.Context) error) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	var err error
	if drain != nil {
		// Drain the daemon first: cancelling its work and closing its
		// event bus ends long-lived streams (SSE) that srv.Shutdown would
		// otherwise wait on for the whole grace period.
		err = drain(shutdownCtx)
	}
	_ = srv.Shutdown(shutdownCtx)
	return err
}
