package daemon

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Tenant is one authenticated principal: a bearer token plus a slot
// quota bounding how many of its studies may be active at once.
type Tenant struct {
	// Name identifies the tenant (journal manifests, occupancy metrics).
	Name string
	// Token is the tenant's bearer token.
	Token string
	// Slots caps the tenant's concurrently active studies; 0 means
	// unlimited.
	Slots int
}

// ParseTenants parses the -tokens flag syntax:
//
//	tenant=token:slots,tenant2=token2,...
//
// The :slots suffix is optional (omitted means unlimited). Names and
// tokens must be non-empty and free of the separator characters; names
// and tokens must both be unique across the list.
func ParseTenants(s string) ([]Tenant, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	names := map[string]bool{}
	tokens := map[string]bool{}
	var out []Tenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("daemon: bad tenant entry %q (want tenant=token[:slots])", part)
		}
		token := rest
		slots := 0
		if tok, slotStr, has := strings.Cut(rest, ":"); has {
			n, err := strconv.Atoi(slotStr)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("daemon: bad slot quota in %q", part)
			}
			token, slots = tok, n
		}
		if token == "" {
			return nil, fmt.Errorf("daemon: empty token for tenant %q", name)
		}
		if names[name] {
			return nil, fmt.Errorf("daemon: duplicate tenant %q", name)
		}
		if tokens[token] {
			return nil, fmt.Errorf("daemon: tenants %q and another share a token", name)
		}
		names[name] = true
		tokens[token] = true
		out = append(out, Tenant{Name: name, Token: token, Slots: slots})
	}
	return out, nil
}

// Auth authenticates bearer tokens for a daemon's mutating endpoints.
// Two shapes coexist: a per-tenant token table (the sharded control
// plane's model) and a single shared token (the original -token flag,
// kept as the single-tenant fallback — it authenticates as the anonymous
// tenant "" with no quota). A nil *Auth, or one with neither configured,
// is open: every request passes as the anonymous tenant.
type Auth struct {
	single  string
	tenants []Tenant
	slots   map[string]int
}

// NewAuth builds an Auth from the single-token fallback and the tenant
// table; either (or both) may be empty.
func NewAuth(single string, tenants []Tenant) *Auth {
	a := &Auth{single: single, tenants: append([]Tenant(nil), tenants...), slots: map[string]int{}}
	for _, t := range a.tenants {
		a.slots[t.Name] = t.Slots
	}
	return a
}

// Enabled reports whether any credential is configured.
func (a *Auth) Enabled() bool {
	return a != nil && (a.single != "" || len(a.tenants) > 0)
}

// Tenants returns the configured tenant table, name-sorted.
func (a *Auth) Tenants() []Tenant {
	if a == nil {
		return nil
	}
	out := append([]Tenant(nil), a.tenants...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Slots returns the tenant's configured quota (0 = unlimited, including
// for unknown tenants and the anonymous single-token tenant).
func (a *Auth) Slots(tenant string) int {
	if a == nil {
		return 0
	}
	return a.slots[tenant]
}

// Authenticate checks r's bearer token. Every configured credential is
// compared in constant time, and the scan never exits early, so response
// timing does not reveal which token (if any) matched. With no
// credentials configured it accepts everything as the anonymous tenant.
func (a *Auth) Authenticate(r *http.Request) (tenant string, ok bool) {
	if !a.Enabled() {
		return "", true
	}
	got, has := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !has {
		return "", false
	}
	matched := false
	if a.single != "" && subtle.ConstantTimeCompare([]byte(got), []byte(a.single)) == 1 {
		matched = true
	}
	for _, t := range a.tenants {
		if subtle.ConstantTimeCompare([]byte(got), []byte(t.Token)) == 1 && !matched {
			matched = true
			tenant = t.Name
		}
	}
	return tenant, matched
}

// Require wraps h behind authentication: requests without a valid bearer
// token are refused with 401. The tenant identity is discarded; use
// RequireTenant when the handler needs it.
func (a *Auth) Require(h http.HandlerFunc) http.HandlerFunc {
	return a.RequireTenant(func(w http.ResponseWriter, r *http.Request, _ string) { h(w, r) })
}

// RequireTenant wraps h behind authentication and passes the
// authenticated tenant name through ("" for the single-token fallback
// and for disabled auth).
func (a *Auth) RequireTenant(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant, ok := a.Authenticate(r)
		if !ok {
			WriteError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid bearer token"))
			return
		}
		h(w, r, tenant)
	}
}
