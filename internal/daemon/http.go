package daemon

import (
	"encoding/json"
	"net/http"
)

// APIError is the JSON error envelope every daemon API answers with.
type APIError struct {
	Error string `json:"error"`
}

// WriteJSON writes v as an indented JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already out; an encode failure here surfaces to
	// the client as a truncated body.
	_ = enc.Encode(v)
}

// WriteError writes err in the APIError envelope.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, APIError{Error: err.Error()})
}
