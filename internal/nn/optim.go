package nn

import "math"

// Adam implements the Adam optimizer over a set of Param blocks.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	params []Param
	m, v   [][]float64
	t      int
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8) over params.
func NewAdam(params []Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Data))
		a.v[i] = make([]float64, len(p.Data))
	}
	return a
}

// Step applies one Adam update using the gradients currently accumulated in
// the parameter blocks, then leaves the gradients untouched (callers zero
// them between minibatches).
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// GradNorm returns the global L2 norm of all gradients in params.
func GradNorm(params []Param) float64 {
	s := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrads rescales all gradients so the global norm is at most maxNorm,
// returning the pre-clip norm.
func ClipGrads(params []Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad {
				p.Grad[j] *= scale
			}
		}
	}
	return norm
}

// ScaleGrads multiplies all gradients by s (e.g. 1/batchSize).
func ScaleGrads(params []Param, s float64) {
	for _, p := range params {
		for j := range p.Grad {
			p.Grad[j] *= s
		}
	}
}

// ZeroGrads clears the gradients of params.
func ZeroGrads(params []Param) {
	for _, p := range params {
		for j := range p.Grad {
			p.Grad[j] = 0
		}
	}
}
