package nn

import "rldecide/internal/obs"

// Training-pass instruments: one atomic add per whole forward/backward
// pass (not per layer), preserving the AllocsPerRun == 0 gates in
// alloc_test.go.
var (
	metricForward = obs.Default.NewCounter("rldecide_nn_forward_total",
		"MLP forward passes (batched and single-observation).")
	metricBackward = obs.Default.NewCounter("rldecide_nn_backward_total",
		"MLP backward passes.")
)
