package nn

import (
	"math"
	"math/rand/v2"
)

// Softmax writes the softmax of logits into dst (allocating when nil) and
// returns dst, using the max-subtraction trick for stability.
func Softmax(logits []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - mx)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
	return dst
}

// LogSoftmax writes log-softmax of logits into dst and returns dst.
func LogSoftmax(logits []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	sum := 0.0
	for _, v := range logits {
		sum += math.Exp(v - mx)
	}
	lse := mx + math.Log(sum)
	for i, v := range logits {
		dst[i] = v - lse
	}
	return dst
}

// logitsMaxExpSum returns max(logits) and Σ exp(v−max) — the two reduction
// passes shared by the allocation-free categorical helpers below. Each
// helper recomputes exp(v−max) per element instead of materializing a
// probability buffer; the arithmetic per element is unchanged, so results
// (and sampled action sequences) are bit-identical to the buffered forms.
func logitsMaxExpSum(logits []float64) (mx, sum float64) {
	mx = logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	for _, v := range logits {
		sum += math.Exp(v - mx)
	}
	return mx, sum
}

// CategoricalSample draws an action index from softmax(logits).
func CategoricalSample(rng *rand.Rand, logits []float64) int {
	mx, sum := logitsMaxExpSum(logits)
	u := rng.Float64()
	acc := 0.0
	for i, v := range logits {
		acc += math.Exp(v-mx) / sum
		if u <= acc {
			return i
		}
	}
	return len(logits) - 1
}

// CategoricalLogProb returns log π(a) under softmax(logits).
func CategoricalLogProb(logits []float64, a int) float64 {
	mx, sum := logitsMaxExpSum(logits)
	return logits[a] - (mx + math.Log(sum))
}

// CategoricalEntropy returns the entropy of softmax(logits) in nats.
func CategoricalEntropy(logits []float64) float64 {
	mx, sum := logitsMaxExpSum(logits)
	lse := mx + math.Log(sum)
	h := 0.0
	for _, v := range logits {
		l := v - lse
		h -= math.Exp(l) * l
	}
	return h
}

// Argmax returns the index of the largest element.
func Argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

const log2Pi = 1.8378770664093453 // log(2π)

// GaussianLogProb returns the log density of x under independent Gaussians
// with the given means and log-standard-deviations.
func GaussianLogProb(x, mean, logStd []float64) float64 {
	lp := 0.0
	for i := range x {
		std := math.Exp(logStd[i])
		z := (x[i] - mean[i]) / std
		lp += -0.5*z*z - logStd[i] - 0.5*log2Pi
	}
	return lp
}

// GaussianSample draws from independent Gaussians into dst.
func GaussianSample(rng *rand.Rand, mean, logStd, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(mean))
	}
	for i := range mean {
		dst[i] = mean[i] + rng.NormFloat64()*math.Exp(logStd[i])
	}
	return dst
}

// GaussianEntropy returns the entropy of independent Gaussians.
func GaussianEntropy(logStd []float64) float64 {
	h := 0.0
	for _, ls := range logStd {
		h += 0.5*(1+log2Pi) + ls
	}
	return h
}
