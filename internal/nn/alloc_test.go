package nn

import (
	"testing"

	"rldecide/internal/mathx"
	"rldecide/internal/tensor"
)

// TestForwardBackwardAllocsZero pins steady-state zero allocation for the
// training kernels at the policy-network shapes the campaign trains
// (batch 32, obs 7 -> 64 -> 64 -> 3 actions).
func TestForwardBackwardAllocsZero(t *testing.T) {
	// Pin the serial kernel path: the zero-allocation guarantee is for
	// single-threaded execution (fan-out dispatch allocates its closure).
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(0)
	rng := mathx.NewRand(1)
	m := NewMLP(rng, []int{7, 64, 64, 3}, Tanh{}, 0.01)
	x := tensor.New(32, 7)
	for i := range x.Data {
		x.Data[i] = rng.Float64() - 0.5
	}
	dout := tensor.New(32, 3)
	for i := range dout.Data {
		dout.Data[i] = rng.Float64() - 0.5
	}
	// Warm up: first pass sizes the layer scratch to the batch.
	m.ZeroGrad()
	m.Forward(x)
	m.Backward(dout)

	if allocs := testing.AllocsPerRun(100, func() {
		m.Forward(x)
	}); allocs != 0 {
		t.Errorf("Forward: %.1f allocs per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		m.ZeroGrad()
		m.Forward(x)
		m.Backward(dout)
	}); allocs != 0 {
		t.Errorf("Forward+Backward: %.1f allocs per pass, want 0", allocs)
	}
}

// TestForward1AllocsZero pins the single-observation action path (one call
// per environment step during collection).
func TestForward1AllocsZero(t *testing.T) {
	rng := mathx.NewRand(2)
	m := NewMLP(rng, []int{7, 64, 64, 3}, Tanh{}, 0.01)
	obs := make([]float64, 7)
	for i := range obs {
		obs[i] = rng.Float64() - 0.5
	}
	m.Forward1(obs) // warm up
	if allocs := testing.AllocsPerRun(100, func() {
		m.Forward1(obs)
	}); allocs != 0 {
		t.Errorf("Forward1: %.1f allocs per call, want 0", allocs)
	}
}
