package nn

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rldecide/internal/tensor"
)

func newRng(a, b uint64) *rand.Rand { return rand.New(rand.NewPCG(a, b)) }

// scalarLoss is 0.5*sum(out^2) with gradient dL/dout = out; used for
// finite-difference checks.
func scalarLoss(out *tensor.Mat) (float64, *tensor.Mat) {
	l := 0.0
	g := tensor.New(out.R, out.C)
	for i, v := range out.Data {
		l += 0.5 * v * v
		g.Data[i] = v
	}
	return l, g
}

func TestMLPGradientsMatchFiniteDifferences(t *testing.T) {
	rng := newRng(1, 2)
	m := NewMLP(rng, []int{4, 8, 3}, Tanh{}, 1.0)
	x := tensor.New(5, 4)
	x.Randomize(rng, 1)

	m.ZeroGrad()
	out := m.Forward(x)
	_, dout := scalarLoss(out)
	m.Backward(dout)

	const eps = 1e-6
	for _, p := range m.Params() {
		for j := 0; j < len(p.Data); j += 7 { // spot-check every 7th weight
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lp, _ := scalarLoss(m.Forward(x))
			p.Data[j] = orig - eps
			lm, _ := scalarLoss(m.Forward(x))
			p.Data[j] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := p.Grad[j]
			if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, j, analytic, numeric)
			}
		}
	}
}

func TestMLPGradientsReLU(t *testing.T) {
	rng := newRng(3, 4)
	m := NewMLP(rng, []int{3, 6, 2}, ReLU{}, 1.0)
	x := tensor.New(4, 3)
	x.Randomize(rng, 1)
	m.ZeroGrad()
	out := m.Forward(x)
	_, dout := scalarLoss(out)
	m.Backward(dout)
	const eps = 1e-6
	p := m.Params()[0]
	for j := 0; j < len(p.Data); j += 3 {
		orig := p.Data[j]
		p.Data[j] = orig + eps
		lp, _ := scalarLoss(m.Forward(x))
		p.Data[j] = orig - eps
		lm, _ := scalarLoss(m.Forward(x))
		p.Data[j] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-p.Grad[j]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("W[%d]: analytic %g vs numeric %g", j, p.Grad[j], numeric)
		}
	}
}

func TestInputGradient(t *testing.T) {
	rng := newRng(5, 6)
	m := NewMLP(rng, []int{3, 5, 2}, Tanh{}, 1.0)
	xdata := []float64{0.3, -0.2, 0.7}
	x := tensor.FromSlice(1, 3, append([]float64(nil), xdata...))
	m.ZeroGrad()
	out := m.Forward(x)
	_, dout := scalarLoss(out)
	dx := m.Backward(dout)
	const eps = 1e-6
	for j := range xdata {
		xp := append([]float64(nil), xdata...)
		xp[j] += eps
		lp, _ := scalarLoss(m.Forward(tensor.FromSlice(1, 3, xp)))
		xm := append([]float64(nil), xdata...)
		xm[j] -= eps
		lm, _ := scalarLoss(m.Forward(tensor.FromSlice(1, 3, xm)))
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.At(0, j)) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: analytic %g vs numeric %g", j, dx.At(0, j), numeric)
		}
	}
}

func TestAdamReducesQuadratic(t *testing.T) {
	// Minimize 0.5*||w - target||^2 with Adam; must converge.
	target := []float64{1, -2, 3}
	w := []float64{0, 0, 0}
	g := []float64{0, 0, 0}
	params := []Param{{Name: "w", Data: w, Grad: g}}
	opt := NewAdam(params, 0.1)
	for it := 0; it < 500; it++ {
		for i := range w {
			g[i] = w[i] - target[i]
		}
		opt.Step()
	}
	for i := range w {
		if math.Abs(w[i]-target[i]) > 1e-2 {
			t.Fatalf("Adam failed to converge: w=%v", w)
		}
	}
}

func TestMLPTrainsXOR(t *testing.T) {
	rng := newRng(7, 8)
	m := NewMLP(rng, []int{2, 16, 1}, Tanh{}, 1.0)
	opt := NewAdam(m.Params(), 0.02)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	batch := tensor.New(4, 2)
	for i, x := range xs {
		copy(batch.Row(i), x)
	}
	var loss float64
	for it := 0; it < 2000; it++ {
		m.ZeroGrad()
		out := m.Forward(batch)
		dout := tensor.New(4, 1)
		loss = 0
		for i := range ys {
			d := out.At(i, 0) - ys[i]
			loss += 0.5 * d * d
			dout.Set(i, 0, d)
		}
		m.Backward(dout)
		opt.Step()
	}
	if loss > 0.01 {
		t.Fatalf("XOR not learned, loss=%v", loss)
	}
}

func TestClipGrads(t *testing.T) {
	g := []float64{3, 4}
	p := []Param{{Data: []float64{0, 0}, Grad: g}}
	pre := ClipGrads(p, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v want 5", pre)
	}
	if n := GradNorm(p); math.Abs(n-1) > 1e-12 {
		t.Fatalf("post-clip norm %v want 1", n)
	}
	// Below threshold: unchanged.
	g2 := []float64{0.3, 0.4}
	p2 := []Param{{Data: []float64{0, 0}, Grad: g2}}
	ClipGrads(p2, 1)
	if g2[0] != 0.3 {
		t.Fatal("clip should not rescale small grads")
	}
	ScaleGrads(p2, 2)
	if g2[0] != 0.6 {
		t.Fatal("ScaleGrads wrong")
	}
	ZeroGrads(p2)
	if g2[0] != 0 {
		t.Fatal("ZeroGrads wrong")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	rng := newRng(9, 10)
	a := NewMLP(rng, []int{3, 4, 2}, Tanh{}, 0.01)
	b := NewMLP(rng, []int{3, 4, 2}, Tanh{}, 0.01)
	w := a.Weights()
	if len(w) != a.NumParams() {
		t.Fatal("Weights length mismatch")
	}
	b.SetWeights(w)
	x := []float64{0.1, 0.2, 0.3}
	oa, ob := a.Forward1(x), b.Forward1(x)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("SetWeights did not replicate the network")
		}
	}
	c := a.Clone()
	oc := c.Forward1(x)
	for i := range oa {
		if oa[i] != oc[i] {
			t.Fatal("Clone did not replicate the network")
		}
	}
}

func TestPolyak(t *testing.T) {
	rng := newRng(11, 12)
	a := NewMLP(rng, []int{2, 3, 1}, Tanh{}, 1)
	b := NewMLP(rng, []int{2, 3, 1}, Tanh{}, 1)
	wantMix := 0.25*b.Weights()[0] + 0.75*a.Weights()[0]
	a.Polyak(b, 0.25)
	if math.Abs(a.Weights()[0]-wantMix) > 1e-12 {
		t.Fatalf("Polyak mix wrong: %v want %v", a.Weights()[0], wantMix)
	}
	a.Polyak(b, 1)
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("Polyak(1) should copy")
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw [4]int8) bool {
		logits := make([]float64, 4)
		for i, v := range raw {
			logits[i] = float64(v) / 16
		}
		p := Softmax(logits, nil)
		sum := 0.0
		for _, pi := range p {
			if pi < 0 || pi > 1 {
				return false
			}
			sum += pi
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// LogSoftmax consistency.
		lp := LogSoftmax(logits, nil)
		for i := range p {
			if math.Abs(math.Exp(lp[i])-p[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 1002}, nil)
	if math.IsNaN(p[0]) || math.Abs(p[0]+p[1]+p[2]-1) > 1e-9 {
		t.Fatalf("softmax overflowed: %v", p)
	}
}

func TestCategoricalSampleDistribution(t *testing.T) {
	rng := newRng(13, 14)
	logits := []float64{math.Log(0.7), math.Log(0.2), math.Log(0.1)}
	counts := [3]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[CategoricalSample(rng, logits)]++
	}
	want := []float64{0.7, 0.2, 0.1}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.02 {
			t.Fatalf("action %d frequency %v want %v", i, got, w)
		}
	}
}

func TestCategoricalEntropy(t *testing.T) {
	// Uniform over 3: entropy = ln 3.
	h := CategoricalEntropy([]float64{0, 0, 0})
	if math.Abs(h-math.Log(3)) > 1e-9 {
		t.Fatalf("uniform entropy %v want %v", h, math.Log(3))
	}
	// Near-deterministic: entropy near 0.
	h = CategoricalEntropy([]float64{100, 0, 0})
	if h > 1e-9 {
		t.Fatalf("deterministic entropy %v", h)
	}
	if lp := CategoricalLogProb([]float64{0, 0, 0}, 1); math.Abs(lp+math.Log(3)) > 1e-9 {
		t.Fatalf("logprob %v", lp)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{1, 3, 2}) != 1 {
		t.Fatal("Argmax wrong")
	}
	if Argmax([]float64{5}) != 0 {
		t.Fatal("Argmax single wrong")
	}
}

func TestGaussian(t *testing.T) {
	// Standard normal at 0: log density = -0.5*log(2π).
	lp := GaussianLogProb([]float64{0}, []float64{0}, []float64{0})
	if math.Abs(lp+0.5*log2Pi) > 1e-12 {
		t.Fatalf("logprob %v", lp)
	}
	// Entropy of N(0,1) = 0.5*(1+log 2π).
	h := GaussianEntropy([]float64{0})
	if math.Abs(h-0.5*(1+log2Pi)) > 1e-12 {
		t.Fatalf("entropy %v", h)
	}
	rng := newRng(15, 16)
	var s, s2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := GaussianSample(rng, []float64{2}, []float64{math.Log(0.5)}, nil)
		s += x[0]
		s2 += x[0] * x[0]
	}
	mean := s / n
	std := math.Sqrt(s2/n - mean*mean)
	if math.Abs(mean-2) > 0.02 || math.Abs(std-0.5) > 0.02 {
		t.Fatalf("sample moments mean=%v std=%v", mean, std)
	}
}

func TestDensePanics(t *testing.T) {
	rng := newRng(17, 18)
	d := NewDense(rng, 3, 2, Tanh{}, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backward before forward should panic")
			}
		}()
		d.Backward(tensor.New(1, 2))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong input dim should panic")
			}
		}()
		d.Forward(tensor.New(1, 4))
	}()
}

func BenchmarkMLPForward(b *testing.B) {
	rng := newRng(1, 1)
	m := NewMLP(rng, []int{10, 64, 64, 3}, Tanh{}, 0.01)
	x := tensor.New(64, 10)
	x.Randomize(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	rng := newRng(1, 1)
	m := NewMLP(rng, []int{10, 64, 64, 3}, Tanh{}, 0.01)
	x := tensor.New(64, 10)
	x.Randomize(rng, 1)
	dout := tensor.New(64, 3)
	dout.Fill(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		m.Forward(x)
		m.Backward(dout)
	}
}
