// Package nn is the from-scratch neural-network stack behind the PPO and
// SAC implementations: dense layers with hand-rolled backpropagation, MLPs,
// the Adam optimizer, and the categorical/Gaussian policy distributions.
// It is CPU-only, float64, deterministic given a seed, and sized for the
// small policy/value networks RL uses (tens of thousands of parameters).
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"rldecide/internal/tensor"
)

// Activation is an elementwise nonlinearity with derivative expressed in
// terms of input z and output y (whichever is cheaper).
type Activation interface {
	Name() string
	Apply(z float64) float64
	// Deriv returns dy/dz given the pre-activation z and post-activation y.
	Deriv(z, y float64) float64
}

// Tanh activation.
type Tanh struct{}

// Name implements Activation.
func (Tanh) Name() string { return "tanh" }

// Apply implements Activation.
func (Tanh) Apply(z float64) float64 { return math.Tanh(z) }

// Deriv implements Activation.
func (Tanh) Deriv(_, y float64) float64 { return 1 - y*y }

// ReLU activation.
type ReLU struct{}

// Name implements Activation.
func (ReLU) Name() string { return "relu" }

// Apply implements Activation.
func (ReLU) Apply(z float64) float64 {
	if z > 0 {
		return z
	}
	return 0
}

// Deriv implements Activation.
func (ReLU) Deriv(z, _ float64) float64 {
	if z > 0 {
		return 1
	}
	return 0
}

// Identity activation (linear output layers).
type Identity struct{}

// Name implements Activation.
func (Identity) Name() string { return "identity" }

// Apply implements Activation.
func (Identity) Apply(z float64) float64 { return z }

// Deriv implements Activation.
func (Identity) Deriv(_, _ float64) float64 { return 1 }

// Dense is a fully connected layer y = act(x @ W + b) with gradient
// accumulation. It caches the last forward batch for the backward pass; it
// is not safe for concurrent use.
type Dense struct {
	In, Out int
	W       *tensor.Mat // In x Out
	B       []float64
	Act     Activation

	DW *tensor.Mat
	DB []float64

	x, z, y *tensor.Mat
	dx      *tensor.Mat
	dz, dw  *tensor.Mat
	wt      *tensor.Mat // packed Wᵀ scratch for the forward product
}

// ensureMat is tensor.Ensure: reuse scratch when capacity allows, so
// steady-state training loops with a stable (or shrinking) batch size
// reach zero allocations after the first pass.
func ensureMat(m *tensor.Mat, r, c int) *tensor.Mat { return tensor.Ensure(m, r, c) }

// NewDense returns a Dense layer with fan-in-scaled Gaussian init of gain.
func NewDense(rng *rand.Rand, in, out int, act Activation, gain float64) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:   tensor.New(in, out),
		B:   make([]float64, out),
		Act: act,
		DW:  tensor.New(in, out),
		DB:  make([]float64, out),
	}
	d.W.Orthogonalish(rng, gain)
	return d
}

// Forward computes the layer output for a batch x (rows = samples).
func (d *Dense) Forward(x *tensor.Mat) *tensor.Mat {
	if x.C != d.In {
		panic(fmt.Sprintf("nn: Dense forward input dim %d, want %d", x.C, d.In))
	}
	d.x = x
	if d.z == nil || d.z.R != x.R {
		d.z = ensureMat(d.z, x.R, d.Out)
		d.y = ensureMat(d.y, x.R, d.Out)
		d.dx = ensureMat(d.dx, x.R, d.In)
	}
	// The packed product is bit-identical to MulInto (same ascending-k
	// order, same zero-skips); the Wᵀ scratch is layer-owned and reused, so
	// steady-state batches stay allocation-free.
	d.wt = tensor.MulIntoPacked(d.z, x, d.W, d.wt)
	d.z.AddBias(d.B)
	applyActivation(d.Act, d.y.Data, d.z.Data)
	return d.y
}

// applyActivation computes y[i] = act(z[i]). The concrete activations are
// dispatched once per batch instead of once per element: the per-element
// interface call was a top-ten sample site in campaign profiles. Each arm
// applies the identical scalar function, so the output bits are unchanged.
func applyActivation(act Activation, y, z []float64) {
	y = y[:len(z)]
	switch act.(type) {
	case ReLU:
		for i, v := range z {
			if v > 0 {
				y[i] = v
			} else {
				y[i] = 0
			}
		}
	case Tanh:
		for i, v := range z {
			y[i] = math.Tanh(v)
		}
	case Identity:
		copy(y, z)
	default:
		for i, v := range z {
			y[i] = act.Apply(v)
		}
	}
}

// activationDeriv computes dz[i] = dy[i] · act'(z[i], y[i]) with the same
// batch-level dispatch as applyActivation.
func activationDeriv(act Activation, dz, dy, z, y []float64) {
	dz = dz[:len(dy)]
	z = z[:len(dy)]
	y = y[:len(dy)]
	switch act.(type) {
	case ReLU:
		for i, g := range dy {
			if z[i] > 0 {
				dz[i] = g
			} else {
				// g·0, not the constant 0: the sign of -0·0 and NaN
				// propagation must match the generic arm bit-for-bit.
				dz[i] = g * 0
			}
		}
	case Tanh:
		for i, g := range dy {
			dz[i] = g * (1 - y[i]*y[i])
		}
	case Identity:
		copy(dz, dy)
	default:
		for i, g := range dy {
			dz[i] = g * act.Deriv(z[i], y[i])
		}
	}
}

// Backward takes dL/dy for the cached batch, accumulates dL/dW and dL/db
// into DW/DB, and returns dL/dx. The returned matrix is reused across
// calls.
func (d *Dense) Backward(dy *tensor.Mat) *tensor.Mat {
	if d.x == nil {
		panic("nn: Dense backward before forward")
	}
	if dy.R != d.x.R || dy.C != d.Out {
		panic("nn: Dense backward shape mismatch")
	}
	// dz = dy * act'(z)
	d.dz = ensureMat(d.dz, dy.R, dy.C)
	dz := d.dz
	activationDeriv(d.Act, dz.Data, dy.Data, d.z.Data, d.y.Data)
	// Accumulate parameter grads.
	if d.dw == nil {
		d.dw = tensor.New(d.In, d.Out)
	}
	tensor.MulTransAInto(d.dw, d.x, dz)
	d.DW.Add(d.dw)
	for r := 0; r < dz.R; r++ {
		row := dz.Row(r)
		for j, v := range row {
			d.DB[j] += v
		}
	}
	// dx = dz @ Wᵀ
	tensor.MulTransBInto(d.dx, dz, d.W)
	return d.dx
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	d.DW.Zero()
	for i := range d.DB {
		d.DB[i] = 0
	}
}

// Param is a flat view of one parameter block and its gradient.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// Params returns the layer's parameter blocks.
func (d *Dense) Params() []Param {
	return []Param{
		{Name: "W", Data: d.W.Data, Grad: d.DW.Data},
		{Name: "b", Data: d.B, Grad: d.DB},
	}
}

// MLP is a stack of Dense layers.
type MLP struct {
	Layers []*Dense

	in1    *tensor.Mat // reusable 1-row input for Forward1
	out1   []float64   // reusable output buffer for Forward1
	params []Param     // lazily built, cached: the layer list is immutable
}

// NewMLP builds an MLP with the given layer sizes (sizes[0] = input dim,
// sizes[len-1] = output dim), hidden activation act, and a linear output
// layer initialized with outGain (small gains stabilize policy heads).
func NewMLP(rng *rand.Rand, sizes []int, act Activation, outGain float64) *MLP {
	if len(sizes) < 2 {
		panic("nn: NewMLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i < len(sizes)-1; i++ {
		last := i == len(sizes)-2
		a := act
		gain := math.Sqrt(2)
		if last {
			a = Identity{}
			gain = outGain
		}
		m.Layers = append(m.Layers, NewDense(rng, sizes[i], sizes[i+1], a, gain))
	}
	return m
}

// InDim returns the input dimension.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the output dimension.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Forward runs the batch through all layers.
func (m *MLP) Forward(x *tensor.Mat) *tensor.Mat {
	metricForward.Inc()
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h)
	}
	return h
}

// Forward1 evaluates a single input vector. The returned slice is owned by
// the MLP and reused by the next Forward1 call — copy it to retain.
func (m *MLP) Forward1(x []float64) []float64 {
	if m.in1 == nil || m.in1.C != len(x) {
		m.in1 = tensor.New(1, len(x))
	}
	copy(m.in1.Data, x)
	out := m.Forward(m.in1)
	if m.out1 == nil || len(m.out1) != len(out.Data) {
		m.out1 = make([]float64, len(out.Data))
	}
	copy(m.out1, out.Data)
	return m.out1
}

// Backward backpropagates dL/dout through all layers, accumulating
// parameter gradients, and returns dL/din.
func (m *MLP) Backward(dout *tensor.Mat) *tensor.Mat {
	metricBackward.Inc()
	g := dout
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(g)
	}
	return g
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// Params returns all parameter blocks. The slice is built once and cached:
// Param holds views into the layers' storage, which never moves, so the
// cached slice stays valid for the life of the network. Callers must not
// modify the slice itself (element Data/Grad contents are fair game).
func (m *MLP) Params() []Param {
	if m.params == nil {
		for i, l := range m.Layers {
			for _, p := range l.Params() {
				p.Name = fmt.Sprintf("layer%d.%s", i, p.Name)
				m.params = append(m.params, p)
			}
		}
	}
	return m.params
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.Data)
	}
	return n
}

// Weights flattens all parameters into one slice (for weight transfer in
// the distributed backends).
func (m *MLP) Weights() []float64 {
	out := make([]float64, 0, m.NumParams())
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetWeights loads a slice produced by Weights.
func (m *MLP) SetWeights(w []float64) {
	if len(w) != m.NumParams() {
		panic(fmt.Sprintf("nn: SetWeights got %d values, want %d", len(w), m.NumParams()))
	}
	off := 0
	for _, p := range m.Params() {
		copy(p.Data, w[off:off+len(p.Data)])
		off += len(p.Data)
	}
}

// CopyFrom copies weights from src (same architecture).
func (m *MLP) CopyFrom(src *MLP) { m.SetWeights(src.Weights()) }

// Polyak blends src into m: θ ← (1−τ)θ + τ·θ_src (target-network update).
func (m *MLP) Polyak(src *MLP, tau float64) {
	mp, sp := m.Params(), src.Params()
	if len(mp) != len(sp) {
		panic("nn: Polyak architecture mismatch")
	}
	for i := range mp {
		for j := range mp[i].Data {
			mp[i].Data[j] = (1-tau)*mp[i].Data[j] + tau*sp[i].Data[j]
		}
	}
}

// Clone returns a deep copy with zeroed gradients and fresh caches.
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{
			In: l.In, Out: l.Out,
			W:   l.W.Clone(),
			B:   append([]float64(nil), l.B...),
			Act: l.Act,
			DW:  tensor.New(l.In, l.Out),
			DB:  make([]float64, l.Out),
		}
		out.Layers = append(out.Layers, nl)
	}
	return out
}
