// Package ode implements the explicit Runge-Kutta integrators used by the
// airdrop simulator: Bogacki–Shampine 3(2) ("RK23"), Dormand–Prince 5(4)
// ("RK45"), the classic fixed-order RK4, and an 8th-order Cooper–Verner
// method ("RK8") standing in for SciPy's DOP853 (same order, comparable
// stage count; see DESIGN.md for the substitution note).
//
// The paper varies the Runge-Kutta order (3, 5, 8) to trade result accuracy
// against computation time; this package therefore exposes, in addition to
// the steppers, the two quantities that trade-off is made of: the per-step
// stage count (the cost) and the embedded or Richardson local-error
// estimate (the accuracy).
package ode

import (
	"fmt"
	"math"
)

// Func is the right-hand side of an ODE system y' = f(t, y).
// Implementations must write the derivative into dydt (same length as y)
// and must not retain either slice.
type Func func(t float64, y, dydt []float64)

// Method is an explicit Runge-Kutta method given by its Butcher tableau.
// A is strictly lower triangular (row i holds i coefficients), B the
// solution weights, BHat optional embedded weights of lower order for error
// estimation, and C the nodes.
type Method struct {
	Name  string
	Order int
	A     [][]float64
	B     []float64
	BHat  []float64
	C     []float64
}

// Stages returns the number of derivative evaluations per step.
func (m *Method) Stages() int { return len(m.B) }

// HasEmbedded reports whether the method carries an embedded error
// estimator.
func (m *Method) HasEmbedded() bool { return m.BHat != nil }

func (m *Method) validate() error {
	s := len(m.B)
	if len(m.C) != s || len(m.A) != s {
		return fmt.Errorf("ode: method %s: inconsistent tableau sizes", m.Name)
	}
	for i, row := range m.A {
		if len(row) != i {
			return fmt.Errorf("ode: method %s: A row %d has %d entries, want %d", m.Name, i, len(row), i)
		}
	}
	if m.BHat != nil && len(m.BHat) != s {
		return fmt.Errorf("ode: method %s: BHat length %d, want %d", m.Name, len(m.BHat), s)
	}
	sum := 0.0
	for _, b := range m.B {
		sum += b
	}
	if math.Abs(sum-1) > 1e-12 {
		return fmt.Errorf("ode: method %s: B weights sum to %v, want 1", m.Name, sum)
	}
	return nil
}

// RK23 returns the Bogacki–Shampine 3(2) method (SciPy's RK23).
func RK23() *Method {
	return &Method{
		Name:  "RK23",
		Order: 3,
		C:     []float64{0, 1. / 2, 3. / 4, 1},
		A: [][]float64{
			{},
			{1. / 2},
			{0, 3. / 4},
			{2. / 9, 1. / 3, 4. / 9},
		},
		B:    []float64{2. / 9, 1. / 3, 4. / 9, 0},
		BHat: []float64{7. / 24, 1. / 4, 1. / 3, 1. / 8},
	}
}

// RK45 returns the Dormand–Prince 5(4) method (SciPy's RK45).
func RK45() *Method {
	return &Method{
		Name:  "RK45",
		Order: 5,
		C:     []float64{0, 1. / 5, 3. / 10, 4. / 5, 8. / 9, 1, 1},
		A: [][]float64{
			{},
			{1. / 5},
			{3. / 40, 9. / 40},
			{44. / 45, -56. / 15, 32. / 9},
			{19372. / 6561, -25360. / 2187, 64448. / 6561, -212. / 729},
			{9017. / 3168, -355. / 33, 46732. / 5247, 49. / 176, -5103. / 18656},
			{35. / 384, 0, 500. / 1113, 125. / 192, -2187. / 6784, 11. / 84},
		},
		B:    []float64{35. / 384, 0, 500. / 1113, 125. / 192, -2187. / 6784, 11. / 84, 0},
		BHat: []float64{5179. / 57600, 0, 7571. / 16695, 393. / 640, -92097. / 339200, 187. / 2100, 1. / 40},
	}
}

// RK4 returns the classic fixed 4th-order Runge-Kutta method (no embedded
// estimator).
func RK4() *Method {
	return &Method{
		Name:  "RK4",
		Order: 4,
		C:     []float64{0, 1. / 2, 1. / 2, 1},
		A: [][]float64{
			{},
			{1. / 2},
			{0, 1. / 2},
			{0, 0, 1},
		},
		B: []float64{1. / 6, 1. / 3, 1. / 3, 1. / 6},
	}
}

// RK8 returns the 11-stage 8th-order Cooper–Verner method. It has no
// embedded pair; local error can be estimated by Richardson extrapolation
// (EstimateLocalError). It substitutes for SciPy's DOP853 in the paper's
// order-8 configurations.
func RK8() *Method {
	s := math.Sqrt(21)
	return &Method{
		Name:  "RK8",
		Order: 8,
		C: []float64{
			0, 1. / 2, 1. / 2, (7 + s) / 14, (7 + s) / 14, 1. / 2,
			(7 - s) / 14, (7 - s) / 14, 1. / 2, (7 + s) / 14, 1,
		},
		A: [][]float64{
			{},
			{1. / 2},
			{1. / 4, 1. / 4},
			{1. / 7, (-7 - 3*s) / 98, (21 + 5*s) / 49},
			{(11 + s) / 84, 0, (18 + 4*s) / 63, (21 - s) / 252},
			{(5 + s) / 48, 0, (9 + s) / 36, (-231 + 14*s) / 360, (63 - 7*s) / 80},
			{(10 - s) / 42, 0, (-432 + 92*s) / 315, (633 - 145*s) / 90, (-504 + 115*s) / 70, (63 - 13*s) / 35},
			{1. / 14, 0, 0, 0, (14 - 3*s) / 126, (13 - 3*s) / 63, 1. / 9},
			{1. / 32, 0, 0, 0, (91 - 21*s) / 576, 11. / 72, (-385 - 75*s) / 1152, (63 + 13*s) / 128},
			{1. / 14, 0, 0, 0, 1. / 9, (-733 - 147*s) / 2205, (515 + 111*s) / 504, (-51 - 11*s) / 56, (132 + 28*s) / 245},
			{0, 0, 0, 0, (-42 + 7*s) / 18, (-18 + 28*s) / 45, (-273 - 53*s) / 72, (301 + 53*s) / 72, (28 - 28*s) / 45, (49 - 7*s) / 18},
		},
		B: []float64{1. / 20, 0, 0, 0, 0, 0, 0, 49. / 180, 16. / 45, 49. / 180, 1. / 20},
	}
}

// ByOrder returns the method the paper associates with the given
// Runge-Kutta order (3 → RK23, 5 → RK45, 8 → RK8). It returns an error for
// unsupported orders.
func ByOrder(order int) (*Method, error) {
	switch order {
	case 3:
		return RK23(), nil
	case 4:
		return RK4(), nil
	case 5:
		return RK45(), nil
	case 8:
		return RK8(), nil
	default:
		return nil, fmt.Errorf("ode: no method for order %d (supported: 3, 4, 5, 8)", order)
	}
}

// Stepper performs single steps of a method without per-step allocation.
// It is not safe for concurrent use; create one per goroutine.
type Stepper struct {
	m      *Method
	dim    int
	k      [][]float64
	ytmp   []float64
	nEvals int64

	// Sparse views of the tableau, precomputed once: the Cooper–Verner RK8
	// tableau is roughly half zeros, and scanning them on every stage of
	// every step is pure overhead. Entries are stored in ascending stage
	// order, so the accumulation order — and the floating-point result —
	// matches the dense loops exactly.
	aSparse  [][]tableauEntry // per stage: nonzero A coefficients
	bSparse  []tableauEntry   // nonzero B weights
	dbSparse []tableauEntry   // nonzero B−BHat weights (embedded error)
}

// tableauEntry is one nonzero tableau coefficient: c applied to stage j.
type tableauEntry struct {
	j int
	c float64
}

// NewStepper returns a Stepper for method m on systems of dimension dim.
// It panics if the tableau is malformed (programmer error).
func NewStepper(m *Method, dim int) *Stepper {
	if err := m.validate(); err != nil {
		panic(err)
	}
	k := make([][]float64, m.Stages())
	for i := range k {
		k[i] = make([]float64, dim)
	}
	s := &Stepper{m: m, dim: dim, k: k, ytmp: make([]float64, dim)}
	s.aSparse = make([][]tableauEntry, m.Stages())
	for i, row := range m.A {
		for j, a := range row {
			if a != 0 {
				s.aSparse[i] = append(s.aSparse[i], tableauEntry{j: j, c: a})
			}
		}
	}
	for i, b := range m.B {
		if b != 0 {
			s.bSparse = append(s.bSparse, tableauEntry{j: i, c: b})
		}
	}
	if m.BHat != nil {
		for i := range m.B {
			if db := m.B[i] - m.BHat[i]; db != 0 {
				s.dbSparse = append(s.dbSparse, tableauEntry{j: i, c: db})
			}
		}
	}
	return s
}

// Method returns the stepper's method.
func (s *Stepper) Method() *Method { return s.m }

// Evals returns the cumulative number of RHS evaluations performed.
func (s *Stepper) Evals() int64 { return s.nEvals }

// Step advances y by one step of size h, writing the result into ynew
// (which may alias y). If yerr is non-nil and the method has an embedded
// pair, the component-wise local error estimate is written into yerr;
// otherwise yerr is zeroed. It returns the time after the step.
func (s *Stepper) Step(f Func, t float64, y []float64, h float64, ynew, yerr []float64) float64 {
	if len(y) != s.dim {
		panic(fmt.Sprintf("ode: Step dim %d, want %d", len(y), s.dim))
	}
	m := s.m
	// The accumulations below hoist h*coefficient out of the element loops
	// and slice k rows to the accumulator length for bounds-check
	// elimination. Both keep the operation grouping (h*c)*k[d] and the
	// ascending-stage order, so every result bit matches the naive loops.
	ytmp := s.ytmp
	for i := 0; i < m.Stages(); i++ {
		copy(ytmp, y)
		for _, e := range s.aSparse[i] {
			ha, kj := h*e.c, s.k[e.j][:len(ytmp)]
			for d := range ytmp {
				ytmp[d] += ha * kj[d]
			}
		}
		f(t+m.C[i]*h, ytmp, s.k[i])
		s.nEvals++
	}
	// Assemble the solution; accumulate into ytmp first so ynew may alias y.
	copy(ytmp, y)
	for _, e := range s.bSparse {
		hb, ki := h*e.c, s.k[e.j][:len(ytmp)]
		for d := range ytmp {
			ytmp[d] += hb * ki[d]
		}
	}
	if yerr != nil {
		for d := range yerr {
			yerr[d] = 0
		}
		for _, e := range s.dbSparse {
			hdb, ki := h*e.c, s.k[e.j][:len(yerr)]
			for d := range yerr {
				yerr[d] += hdb * ki[d]
			}
		}
	}
	copy(ynew, ytmp)
	return t + h
}

// Integrate advances y0 from t0 to t1 with fixed step size h (the final
// step is shortened to land exactly on t1). It writes the result into y0
// and returns the number of steps taken.
func Integrate(f Func, m *Method, t0, t1 float64, y0 []float64, h float64) int {
	if h <= 0 {
		panic("ode: Integrate requires h > 0")
	}
	st := NewStepper(m, len(y0))
	steps := 0
	t := t0
	for t < t1-1e-12 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		t = st.Step(f, t, y0, step, y0, nil)
		steps++
	}
	return steps
}

// ErrorEstimator performs Richardson-extrapolation local-error estimates
// without per-call allocation: it owns a Stepper and the full/half scratch
// buffers, so callers that estimate repeatedly (the airdrop simulator does
// so every few steps) stay allocation-free. Not safe for concurrent use.
type ErrorEstimator struct {
	st         *Stepper
	full, half []float64
}

// NewErrorEstimator returns an estimator for method m on systems of
// dimension dim.
func NewErrorEstimator(m *Method, dim int) *ErrorEstimator {
	return &ErrorEstimator{
		st:   NewStepper(m, dim),
		full: make([]float64, dim),
		half: make([]float64, dim),
	}
}

// Estimate estimates the local truncation error of one step of size h at
// (t, y) by comparing one full step against two half steps, returning the
// RMS norm of the difference scaled by 1/(2^p − 1) where p is the method
// order. It works for any method, including those without an embedded pair.
func (e *ErrorEstimator) Estimate(f Func, t float64, y []float64, h float64) float64 {
	m := e.st.Method()
	e.st.Step(f, t, y, h, e.full, nil)
	copy(e.half, y)
	tm := e.st.Step(f, t, e.half, h/2, e.half, nil)
	e.st.Step(f, tm, e.half, h/2, e.half, nil)
	scale := math.Pow(2, float64(m.Order)) - 1
	sum := 0.0
	for d := range e.full {
		d2 := (e.half[d] - e.full[d]) / scale
		sum += d2 * d2
	}
	return math.Sqrt(sum / float64(len(e.full)))
}

// EstimateLocalError is the one-shot form of ErrorEstimator.Estimate; it
// allocates scratch per call, so hot paths should hold an ErrorEstimator.
func EstimateLocalError(f Func, m *Method, t float64, y []float64, h float64) float64 {
	return NewErrorEstimator(m, len(y)).Estimate(f, t, y, h)
}
