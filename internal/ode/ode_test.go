package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// expSys is y' = y, solution e^t.
func expSys(t float64, y, dydt []float64) { dydt[0] = y[0] }

// oscSys is the harmonic oscillator y” = -y as a 2-D system; solution
// (cos t, -sin t) from (1, 0).
func oscSys(t float64, y, dydt []float64) {
	dydt[0] = y[1]
	dydt[1] = -y[0]
}

// nonlinSys is a smooth nonlinear system with a known-ish reference
// computed at very high accuracy; used for convergence-order checks.
func nonlinSys(t float64, y, dydt []float64) {
	dydt[0] = math.Sin(t) - y[0]*y[1]
	dydt[1] = y[0] - 0.5*y[1]
}

func methods() []*Method {
	return []*Method{RK23(), RK4(), RK45(), RK8()}
}

func TestTableausValid(t *testing.T) {
	for _, m := range methods() {
		if err := m.validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		// Row-sum condition: c_i == sum(a_ij).
		for i, row := range m.A {
			sum := 0.0
			for _, a := range row {
				sum += a
			}
			if math.Abs(sum-m.C[i]) > 1e-12 {
				t.Errorf("%s: row %d sums to %v, c=%v", m.Name, i, sum, m.C[i])
			}
		}
	}
}

func TestStagesAndOrder(t *testing.T) {
	cases := []struct {
		m      *Method
		stages int
		order  int
	}{
		{RK23(), 4, 3},
		{RK4(), 4, 4},
		{RK45(), 7, 5},
		{RK8(), 11, 8},
	}
	for _, c := range cases {
		if c.m.Stages() != c.stages {
			t.Errorf("%s stages=%d want %d", c.m.Name, c.m.Stages(), c.stages)
		}
		if c.m.Order != c.order {
			t.Errorf("%s order=%d want %d", c.m.Name, c.m.Order, c.order)
		}
	}
}

func TestByOrder(t *testing.T) {
	for _, order := range []int{3, 4, 5, 8} {
		m, err := ByOrder(order)
		if err != nil {
			t.Fatalf("ByOrder(%d): %v", order, err)
		}
		if m.Order != order {
			t.Errorf("ByOrder(%d) returned order %d", order, m.Order)
		}
	}
	if _, err := ByOrder(7); err == nil {
		t.Error("ByOrder(7) should fail")
	}
}

func TestExponentialAccuracy(t *testing.T) {
	for _, m := range methods() {
		y := []float64{1}
		Integrate(expSys, m, 0, 1, y, 0.01)
		want := math.E
		tol := map[string]float64{"RK23": 1e-6, "RK4": 1e-8, "RK45": 1e-10, "RK8": 1e-12}[m.Name]
		if math.Abs(y[0]-want) > tol {
			t.Errorf("%s: e^1 = %.15f, want %.15f (err %g > tol %g)", m.Name, y[0], want, math.Abs(y[0]-want), tol)
		}
	}
}

func TestOscillatorEnergy(t *testing.T) {
	// Integrate 10 periods; the Hamiltonian y0^2+y1^2 must stay near 1.
	for _, m := range methods() {
		y := []float64{1, 0}
		Integrate(oscSys, m, 0, 20*math.Pi, y, 0.02)
		h := y[0]*y[0] + y[1]*y[1]
		if math.Abs(h-1) > 1e-4 {
			t.Errorf("%s: energy drifted to %v", m.Name, h)
		}
	}
}

// refSolution integrates nonlinSys with RK45 at a tiny step to serve as a
// reference for convergence tests.
func refSolution(t1 float64) []float64 {
	y := []float64{1, 0.5}
	Integrate(nonlinSys, RK45(), 0, t1, y, 1e-5)
	return y
}

func errAt(m *Method, h float64, ref []float64) float64 {
	y := []float64{1, 0.5}
	Integrate(nonlinSys, m, 0, 1, y, h)
	return math.Hypot(y[0]-ref[0], y[1]-ref[1])
}

// TestConvergenceOrders empirically verifies that halving the step reduces
// the global error by ~2^order; this catches tableau transcription errors.
func TestConvergenceOrders(t *testing.T) {
	ref := refSolution(1)
	cases := []struct {
		m       *Method
		h       float64
		minRate float64
	}{
		{RK23(), 0.05, 2.6},
		{RK4(), 0.05, 3.6},
		{RK45(), 0.1, 4.5},
		{RK8(), 0.4, 6.5},
	}
	for _, c := range cases {
		e1 := errAt(c.m, c.h, ref)
		e2 := errAt(c.m, c.h/2, ref)
		if e2 == 0 {
			continue // below float precision, fine
		}
		rate := math.Log2(e1 / e2)
		if rate < c.minRate {
			t.Errorf("%s: observed convergence rate %.2f < %.2f (e1=%g e2=%g)", c.m.Name, rate, c.minRate, e1, e2)
		}
	}
}

func TestEmbeddedErrorTracksTruth(t *testing.T) {
	// For RK23/RK45 the embedded estimate should be within a couple of
	// orders of magnitude of the true one-step error.
	for _, m := range []*Method{RK23(), RK45()} {
		st := NewStepper(m, 2)
		y := []float64{1, 0.5}
		ynew := make([]float64, 2)
		yerr := make([]float64, 2)
		h := 0.1
		st.Step(nonlinSys, 0, y, h, ynew, yerr)
		// true error via tiny-step reference over one h
		ref := []float64{1, 0.5}
		Integrate(nonlinSys, RK45(), 0, h, ref, 1e-6)
		trueErr := math.Hypot(ynew[0]-ref[0], ynew[1]-ref[1])
		est := math.Hypot(yerr[0], yerr[1])
		if est == 0 {
			t.Errorf("%s: zero embedded estimate", m.Name)
			continue
		}
		ratio := est / math.Max(trueErr, 1e-18)
		if ratio < 1e-2 || ratio > 1e4 {
			t.Errorf("%s: embedded estimate %g vs true %g (ratio %g)", m.Name, est, trueErr, ratio)
		}
	}
}

func TestErrorEstimateDecreasesWithOrder(t *testing.T) {
	// The paper's central accuracy knob: higher RK order → smaller local
	// error at the same step size.
	h := 0.3
	y := []float64{1, 0.5}
	e3 := EstimateLocalError(nonlinSys, RK23(), 0, y, h)
	e5 := EstimateLocalError(nonlinSys, RK45(), 0, y, h)
	e8 := EstimateLocalError(nonlinSys, RK8(), 0, y, h)
	if !(e3 > e5 && e5 > e8) {
		t.Errorf("local error not monotone in order: RK23=%g RK45=%g RK8=%g", e3, e5, e8)
	}
}

func TestStepAliasSafe(t *testing.T) {
	// ynew may alias y.
	for _, m := range methods() {
		st := NewStepper(m, 2)
		y := []float64{1, 0.5}
		sep := make([]float64, 2)
		st.Step(nonlinSys, 0, y, 0.1, sep, nil)
		y2 := []float64{1, 0.5}
		st2 := NewStepper(m, 2)
		st2.Step(nonlinSys, 0, y2, 0.1, y2, nil)
		if y2[0] != sep[0] || y2[1] != sep[1] {
			t.Errorf("%s: aliased step differs: %v vs %v", m.Name, y2, sep)
		}
	}
}

func TestIntegrateLandsExactly(t *testing.T) {
	// Step not dividing the interval: final shortened step must land on t1.
	y := []float64{1}
	steps := Integrate(expSys, RK4(), 0, 1, y, 0.3)
	if steps != 4 {
		t.Errorf("steps=%d want 4 (0.3+0.3+0.3+0.1)", steps)
	}
	if math.Abs(y[0]-math.E) > 5e-4 {
		t.Errorf("endpoint wrong: %v", y[0])
	}
}

func TestEvalsAccounting(t *testing.T) {
	st := NewStepper(RK45(), 1)
	y := []float64{1}
	st.Step(expSys, 0, y, 0.1, y, nil)
	st.Step(expSys, 0.1, y, 0.1, y, nil)
	if st.Evals() != 14 {
		t.Errorf("Evals=%d want 14 (2 steps x 7 stages)", st.Evals())
	}
}

func TestAdaptiveSolve(t *testing.T) {
	for _, m := range []*Method{RK23(), RK45()} {
		y := []float64{1, 0}
		a := Adaptive{Method: m, Rtol: 1e-8, Atol: 1e-10}
		res, err := a.Solve(oscSys, 0, 2*math.Pi, y)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if math.Abs(y[0]-1) > 1e-6 || math.Abs(y[1]) > 1e-6 {
			t.Errorf("%s: after one period y=%v want (1,0)", m.Name, y)
		}
		if res.Steps == 0 || res.Evals == 0 {
			t.Errorf("%s: empty stats %+v", m.Name, res)
		}
	}
}

func TestAdaptiveTightensWithTolerance(t *testing.T) {
	run := func(rtol float64) int {
		y := []float64{1, 0}
		a := Adaptive{Method: RK45(), Rtol: rtol, Atol: rtol * 1e-2}
		res, err := a.Solve(oscSys, 0, 2*math.Pi, y)
		if err != nil {
			t.Fatal(err)
		}
		return res.Steps
	}
	loose := run(1e-4)
	tight := run(1e-10)
	if tight <= loose {
		t.Errorf("tighter tolerance should need more steps: %d vs %d", tight, loose)
	}
}

func TestAdaptiveErrors(t *testing.T) {
	var a Adaptive
	if _, err := a.Solve(expSys, 0, 1, []float64{1}); err == nil {
		t.Error("nil method should error")
	}
	a = Adaptive{Method: RK8()}
	if _, err := a.Solve(expSys, 0, 1, []float64{1}); err == nil {
		t.Error("method without embedded pair should error")
	}
	a = Adaptive{Method: RK45()}
	if _, err := a.Solve(expSys, 1, 0, []float64{1}); err == nil {
		t.Error("t1 <= t0 should error")
	}
}

func TestLinearityProperty(t *testing.T) {
	// For the linear system y'=y, integration is linear in the initial
	// condition: solve(a*y0) == a*solve(y0).
	f := func(scaleRaw int8) bool {
		scale := 0.1 + math.Abs(float64(scaleRaw))/32.0
		y1 := []float64{1}
		y2 := []float64{scale}
		Integrate(expSys, RK45(), 0, 1, y1, 0.05)
		Integrate(expSys, RK45(), 0, 1, y2, 0.05)
		return math.Abs(y2[0]-scale*y1[0]) < 1e-9*(1+scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStepRK23(b *testing.B) { benchStep(b, RK23()) }
func BenchmarkStepRK45(b *testing.B) { benchStep(b, RK45()) }
func BenchmarkStepRK8(b *testing.B)  { benchStep(b, RK8()) }

func benchStep(b *testing.B, m *Method) {
	st := NewStepper(m, 2)
	y := []float64{1, 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Step(nonlinSys, 0, y, 0.01, y, nil)
	}
}
