package ode

import (
	"fmt"
	"math"
)

// Adaptive integrates with embedded-error step-size control, in the style
// of SciPy's solve_ivp. Only methods with an embedded pair are supported
// (RK23, RK45); RK8 is used with fixed steps in this project, as DOP853's
// dense control is out of scope.
type Adaptive struct {
	Method *Method
	Rtol   float64 // relative tolerance (default 1e-6)
	Atol   float64 // absolute tolerance (default 1e-9)
	HInit  float64 // initial step (default (t1-t0)/100)
	HMin   float64 // minimum step before giving up (default 1e-10)
	HMax   float64 // maximum step (default t1-t0)

	// Safety, MinFactor and MaxFactor control the classic step-size update
	// h' = h * clip(Safety * err^(-1/(order)), MinFactor, MaxFactor).
	Safety    float64 // default 0.9
	MinFactor float64 // default 0.2
	MaxFactor float64 // default 5.0
}

// AdaptiveResult reports integration statistics.
type AdaptiveResult struct {
	Steps    int     // accepted steps
	Rejected int     // rejected steps
	Evals    int64   // RHS evaluations
	LastH    float64 // final step size
	MaxErr   float64 // largest accepted scaled error
}

func (a *Adaptive) defaults(t0, t1 float64) Adaptive {
	cfg := *a
	if cfg.Rtol == 0 {
		cfg.Rtol = 1e-6
	}
	if cfg.Atol == 0 {
		cfg.Atol = 1e-9
	}
	if cfg.HInit == 0 {
		cfg.HInit = (t1 - t0) / 100
	}
	if cfg.HMin == 0 {
		cfg.HMin = 1e-10
	}
	if cfg.HMax == 0 {
		cfg.HMax = t1 - t0
	}
	if cfg.Safety == 0 {
		cfg.Safety = 0.9
	}
	if cfg.MinFactor == 0 {
		cfg.MinFactor = 0.2
	}
	if cfg.MaxFactor == 0 {
		cfg.MaxFactor = 5.0
	}
	return cfg
}

// Solve integrates y from t0 to t1, updating y in place.
func (a *Adaptive) Solve(f Func, t0, t1 float64, y []float64) (AdaptiveResult, error) {
	if a.Method == nil {
		return AdaptiveResult{}, fmt.Errorf("ode: Adaptive.Method is nil")
	}
	if !a.Method.HasEmbedded() {
		return AdaptiveResult{}, fmt.Errorf("ode: method %s has no embedded error estimator", a.Method.Name)
	}
	if t1 <= t0 {
		return AdaptiveResult{}, fmt.Errorf("ode: Adaptive.Solve needs t1 > t0")
	}
	cfg := a.defaults(t0, t1)

	dim := len(y)
	st := NewStepper(cfg.Method, dim)
	ynew := make([]float64, dim)
	yerr := make([]float64, dim)

	var res AdaptiveResult
	t := t0
	h := math.Min(cfg.HInit, cfg.HMax)
	// Error exponent: embedded pair of orders (p, p-1) → control on p-1+1.
	exp := 1.0 / float64(cfg.Method.Order)

	for t < t1-1e-12 {
		if h < cfg.HMin {
			return res, fmt.Errorf("ode: step size underflow at t=%g (h=%g)", t, h)
		}
		if t+h > t1 {
			h = t1 - t
		}
		st.Step(f, t, y, h, ynew, yerr)
		// Scaled RMS error norm.
		sum := 0.0
		for d := 0; d < dim; d++ {
			sc := cfg.Atol + cfg.Rtol*math.Max(math.Abs(y[d]), math.Abs(ynew[d]))
			e := yerr[d] / sc
			sum += e * e
		}
		errNorm := math.Sqrt(sum / float64(dim))

		if errNorm <= 1 {
			t += h
			copy(y, ynew)
			res.Steps++
			if errNorm > res.MaxErr {
				res.MaxErr = errNorm
			}
		} else {
			res.Rejected++
		}

		factor := cfg.MaxFactor
		if errNorm > 0 {
			factor = cfg.Safety * math.Pow(errNorm, -exp)
		}
		if factor < cfg.MinFactor {
			factor = cfg.MinFactor
		}
		if factor > cfg.MaxFactor {
			factor = cfg.MaxFactor
		}
		h = math.Min(h*factor, cfg.HMax)
	}
	res.Evals = st.Evals()
	res.LastH = h
	return res, nil
}
