package ode

import "testing"

// TestRK8StepAllocsZero pins the solver hot path: one Cooper–Verner RK8
// step must not allocate once the stepper's stage buffers exist.
func TestRK8StepAllocsZero(t *testing.T) {
	st := NewStepper(RK8(), 2)
	y := []float64{1, 0.5}
	yerr := make([]float64, 2)
	st.Step(nonlinSys, 0, y, 0.01, y, yerr) // warm up
	if allocs := testing.AllocsPerRun(100, func() {
		st.Step(nonlinSys, 0, y, 0.01, y, yerr)
	}); allocs != 0 {
		t.Errorf("RK8 Step: %.1f allocs per step, want 0", allocs)
	}
}
