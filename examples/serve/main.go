// Serve example: drive the studyd HTTP API end to end as a client.
//
// Start the daemon in one terminal:
//
//	go run ./cmd/rldecide-serve -dir /tmp/studyd-demo
//
// then run this client in another:
//
//	go run ./examples/serve [-addr http://localhost:8080]
//
// It submits a two-metric sphere study with artificial per-trial latency,
// watches the Pareto front sharpen live while trials finish, and prints
// the final ranking. Kill the daemon mid-run and restart it to watch the
// campaign resume from its journal — the final front is identical to an
// uninterrupted run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "rldecide-serve base URL")
	flag.Parse()

	spec := map[string]any{
		"name":        "serve-demo",
		"description": "live Pareto inspection over HTTP",
		"params": []map[string]any{
			{"name": "x", "type": "floatrange", "lo": -2, "hi": 2},
			{"name": "y", "type": "floatrange", "lo": -2, "hi": 2},
		},
		"explorer": map[string]any{"type": "random"},
		"metrics": []map[string]any{
			{"name": "f", "direction": "min"},
			{"name": "cost", "unit": "au", "direction": "min"},
		},
		"objective":   "sphere",
		"sleep_ms":    150,
		"budget":      40,
		"parallelism": 4,
		"seed":        7,
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(*addr+"/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("submitting study: %v (is rldecide-serve running?)", err)
	}
	var sum struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Budget int    `json:"budget"`
		Error  string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		fatalf("decoding submission response: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		fatalf("submission rejected (%d): %s", resp.StatusCode, sum.Error)
	}
	fmt.Printf("submitted study %s (budget %d)\n", sum.ID, sum.Budget)

	for {
		time.Sleep(500 * time.Millisecond)
		var st struct {
			Status   string `json:"status"`
			Finished int    `json:"finished"`
		}
		getJSON(*addr+"/studies/"+sum.ID, &st)
		var front struct {
			Fronts    [][]int `json:"fronts"`
			Completed int     `json:"completed"`
		}
		getJSON(*addr+"/studies/"+sum.ID+"/front", &front)
		first := []int{}
		if len(front.Fronts) > 0 {
			first = front.Fronts[0]
		}
		fmt.Printf("  %s: %d/%d trials, live front %v\n", st.Status, st.Finished, sum.Budget, first)
		if st.Status == "done" || st.Status == "failed" || st.Status == "interrupted" {
			fmt.Printf("final status: %s\n", st.Status)
			break
		}
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fatalf("decoding %s: %v", url, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "serve example: "+format+"\n", args...)
	os.Exit(1)
}
