// Airdrop: the paper's case study end-to-end at reduced scale.
//
// Runs a six-configuration slice of the Table-I campaign — real PPO/SAC
// training on the parachute simulator over the virtual cluster — and
// prints the resulting decision-analysis table and the reward-vs-time
// Pareto front. Expect a couple of minutes of wall time.
//
// Run:
//
//	go run ./examples/airdrop
package main

import (
	"fmt"
	"os"

	"rldecide/internal/core"
	"rldecide/internal/experiments"
	"rldecide/internal/param"
	"rldecide/internal/report"
)

func main() {
	// A representative slice of Table I: the fastest configuration, the
	// best-reward configuration, the most power-efficient one, the
	// 1-vs-2-node pair, and one SAC run.
	ids := map[int]bool{2: true, 16: true, 11: true, 7: true, 8: true, 15: true}
	var picks []param.Assignment
	for _, sol := range experiments.TableI() {
		if ids[sol.ID] {
			picks = append(picks, sol.Assignment())
		}
	}

	scale := experiments.QuickScale()
	scale.TotalSteps = 12_000 // enough for PPO to steer credibly
	scale.Replicas = 1

	study := experiments.NewTableIStudy(scale, 7, 1)
	study.Explorer = &experiments.ReplayExplorer{Assignments: picks}

	fmt.Fprintf(os.Stderr, "training %d configurations (%d steps each)...\n", len(picks), scale.TotalSteps)
	rep, err := study.Run(len(picks))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	report.Table(os.Stdout, rep)
	fmt.Println()
	report.ASCIIScatter(os.Stdout, rep, report.ScatterSpec{
		X:     experiments.MetricTime,
		Y:     experiments.MetricReward,
		Title: "Reward vs. Computation Time (cf. paper Fig. 4)",
		Eps:   experiments.FrontEps,
	})

	front, _ := rep.FrontIDs(experiments.FrontEps, experiments.MetricReward, experiments.MetricTime, experiments.MetricPower)
	fmt.Printf("\n3-objective Pareto front: trials %v\n", front)
	if best, ok := rep.Best(experiments.MetricReward); ok {
		fmt.Printf("best reward: trial %d  %s  (%.3f)\n", best.ID, best.Params, best.Values.At(experiments.MetricReward))
	}
	var _ *core.Report = rep
}
