// Quickstart: build a decision-analysis tool in ~50 lines.
//
// The methodology's five stages on a synthetic problem: we "train" a fake
// model whose accuracy, runtime and energy depend on two knobs (model size
// and solver precision), explore the space with Random Search, and rank
// the trade-offs with a Pareto front.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"

	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/report"
	"rldecide/internal/search"
)

func main() {
	study := &core.Study{
		// (a) the case study.
		CaseStudy: core.CaseStudy{
			Name:        "quickstart",
			Description: "synthetic accuracy/runtime/energy trade-off",
		},
		// (b) the learning configurations.
		Space: param.MustSpace(
			param.NewIntSet("model_size", 16, 32, 64, 128),
			param.NewFloatRange("precision", 0.1, 1.0),
		),
		// (c) the exploratory method.
		Explorer: search.RandomSearch{Dedup: true},
		// (d) the evaluation metrics.
		Metrics: []core.Metric{
			{Name: "accuracy", Direction: pareto.Maximize},
			{Name: "runtime", Unit: "s", Direction: pareto.Minimize},
			{Name: "energy", Unit: "J", Direction: pareto.Minimize},
		},
		// (e) the ranking method.
		Ranker: core.ParetoRanker{},
		// The objective evaluates one configuration.
		Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
			size := a.Value("model_size").Float()
			prec := a.Value("precision").Float()
			rec.Report("accuracy", 1-math.Exp(-size*prec/40))
			rec.Report("runtime", 0.05*size*prec)
			rec.Report("energy", 2+0.8*size*prec)
			return nil
		},
		Seed: 42,
	}

	rep, err := study.Run(24)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("== all trials ==")
	report.Table(os.Stdout, rep)

	front, _ := rep.FrontIDs(0, "accuracy", "runtime")
	fmt.Printf("\naccuracy/runtime Pareto front: trials %v\n\n", front)
	report.ASCIIScatter(os.Stdout, rep, report.ScatterSpec{
		X: "runtime", Y: "accuracy", Title: "accuracy vs runtime",
	})
	if best, ok := rep.Best("accuracy"); ok {
		fmt.Printf("\nbest accuracy: trial %d (%s)\n", best.ID, best.Params)
	}
}
