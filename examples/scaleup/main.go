// Scaleup: the paper's future-work direction — scaling the experiments
// beyond the 2-node testbed (they name Grid'5000). The virtual cluster
// makes this a parameter: we sweep the RLlib-style backend from 1 to 8
// nodes on the same training budget and chart how computation time falls
// while energy and the staleness reward penalty grow.
//
// Run:
//
//	go run ./examples/scaleup
package main

import (
	"fmt"
	"os"

	"rldecide/internal/airdrop"
	"rldecide/internal/distrib"
)

func main() {
	envCfg := airdrop.NewConfig()
	envCfg.RKOrder = 3
	envCfg.Wind.Enabled = false

	fmt.Println("nodes  time(min)  energy(kJ)  reward   speedup")
	base := 0.0
	for _, nodes := range []int{1, 2, 4, 8} {
		cfg := distrib.TrainConfig{
			Framework:    distrib.RLlib,
			Algo:         distrib.PPO,
			Nodes:        nodes,
			Cores:        4,
			EnvMaker:     airdrop.Make(envCfg),
			TotalSteps:   12_000,
			RolloutSteps: 64,
			EvalEpisodes: 30,
			Seed:         11,
		}
		res, err := distrib.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Extrapolate to the paper's 200k-step deployment.
		f := 200_000.0 / float64(res.Steps)
		t := res.TimeSeconds * f / 60
		e := res.EnergyJoules * f / 1000
		if nodes == 1 {
			base = t
		}
		fmt.Printf("%5d  %9.1f  %10.1f  %7.3f  %6.2fx\n", nodes, t, e, res.MeanReward, base/t)
	}
	fmt.Println("\nMore nodes keep buying wall-clock time but at a growing energy floor")
	fmt.Println("and a reward cost from policy staleness — the trade-off the paper's")
	fmt.Println("methodology is built to expose before committing to a deployment.")
}
