// Hyperparam: the paper's "implementation idea" of building the
// methodology on a hyperparameter-optimization framework (Optuna /
// Hyperopt): a TPE sampler proposes PPO hyperparameters for the Steer1D
// toy task, and a median pruner stops unpromising trials early from their
// intermediate learning curves.
//
// Run:
//
//	go run ./examples/hyperparam
package main

import (
	"fmt"
	"os"

	"rldecide/internal/core"
	"rldecide/internal/gym"
	"rldecide/internal/gym/toy"
	"rldecide/internal/mathx"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/report"
	"rldecide/internal/rl"
	"rldecide/internal/rl/ppo"
	"rldecide/internal/search"
)

func main() {
	study := &core.Study{
		CaseStudy: core.CaseStudy{
			Name:        "steer1d-hpo",
			Description: "TPE + median pruning over PPO hyperparameters",
		},
		Space: param.MustSpace(
			param.NewLogFloatRange("lr", 1e-4, 1e-2),
			param.NewIntSet("epochs", 4, 8, 12),
			param.NewFloatRange("clip", 0.1, 0.3),
		),
		Explorer: search.TPE{MinTrials: 6, NCandidates: 24},
		Metrics: []core.Metric{
			{Name: "return", Direction: pareto.Maximize},
		},
		Ranker:    core.SortedRanker{By: "return"},
		Pruner:    search.MedianPruner{WarmupSteps: 1, MinTrials: 4},
		Objective: trainObjective,
		Seed:      3,
	}

	fmt.Fprintln(os.Stderr, "running 20 TPE trials with median pruning...")
	rep, err := study.Run(20)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	pruned := 0
	for _, t := range rep.Trials {
		if t.Pruned {
			pruned++
		}
	}
	fmt.Printf("trials: %d finished, %d pruned early\n\n", len(rep.Completed()), pruned)
	report.Table(os.Stdout, rep)
	if best, ok := rep.Best("return"); ok {
		fmt.Printf("\nbest configuration: %s  (return %.3f)\n", best.Params, best.Values.At("return"))
	}
}

// trainObjective trains PPO on Steer1D with the proposed hyperparameters,
// reporting intermediate evaluation returns so the pruner can act.
func trainObjective(a param.Assignment, seed uint64, rec *core.Recorder) error {
	seeder := mathx.NewSeeder(seed)
	vec := gym.NewVec(toy.MakeSteer1D(), 4, seeder, false)
	cfg := ppo.Config{
		LR:      a.Value("lr").Float(),
		Epochs:  a.Value("epochs").Int(),
		ClipEps: a.Value("clip").Float(),
	}
	learner := ppo.New(cfg, vec.ObservationSpace().Dim(), 3, seeder.Next())
	col := ppo.NewCollector(vec)

	evalEnv := toy.NewSteer1D(seeder.Next())
	const rounds = 8
	for r := 0; r < rounds; r++ {
		for i := 0; i < 5; i++ {
			learner.Update(col.Collect(learner, 64))
		}
		eval := rl.Evaluate(evalEnv, learner.Policy(), 10)
		if !rec.Intermediate(eval.MeanReturn) {
			return core.ErrPruned
		}
	}
	final := rl.Evaluate(evalEnv, learner.Policy(), 30)
	rec.Report("return", final.MeanReturn)
	return nil
}
