// Envparams: exploring the case study's *environment-dependent* parameters
// (paper §IV-B): wind, gusts and the Runge-Kutta order all change both the
// learning difficulty and the compute cost. Here the scripted autopilot
// stands in for a trained agent so the whole grid runs in seconds, and the
// study grid-searches the environment space against landing precision and
// modeled per-episode CPU cost.
//
// Run:
//
//	go run ./examples/envparams
package main

import (
	"fmt"
	"os"

	"rldecide/internal/airdrop"
	"rldecide/internal/core"
	"rldecide/internal/param"
	"rldecide/internal/pareto"
	"rldecide/internal/report"
	"rldecide/internal/rl"
	"rldecide/internal/search"
)

func main() {
	study := &core.Study{
		CaseStudy: core.CaseStudy{
			Name:        "airdrop-environment-parameters",
			Description: "wind / gusts / RK order vs. landing precision and step cost",
		},
		Space: param.MustSpace(
			param.NewIntSet("rk_order", 3, 5, 8),
			param.NewIntSet("wind", 0, 1),
			param.NewFloatRange("gust_prob", 0, 0.2),
		),
		Explorer: &search.GridSearch{},
		Metrics: []core.Metric{
			{Name: "reward", Direction: pareto.Maximize},
			{Name: "episode_cost", Unit: "s", Direction: pareto.Minimize},
		},
		Ranker:    core.ParetoRanker{},
		Objective: flyGrid,
		Seed:      5,
	}

	// 3 orders x 2 wind x 5 gust grid points = 30 configurations.
	rep, err := study.Run(30)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	report.Table(os.Stdout, rep)
	fmt.Println()
	report.ASCIIScatter(os.Stdout, rep, report.ScatterSpec{
		X: "episode_cost", Y: "reward",
		Title: "landing precision vs. per-episode compute",
	})
	if best, ok := rep.Best("reward"); ok {
		fmt.Printf("\neasiest environment: %s (reward %.3f)\n", best.Params, best.Values.At("reward"))
	}
}

// flyGrid evaluates one environment configuration with the PD autopilot.
func flyGrid(a param.Assignment, seed uint64, rec *core.Recorder) error {
	cfg := airdrop.NewConfig()
	cfg.RKOrder = a.Value("rk_order").Int()
	cfg.Wind.Enabled = a.Value("wind").Int() == 1
	cfg.Wind.Gusts = cfg.Wind.Enabled && a.Value("gust_prob").Float() > 0
	cfg.Wind.GustProb = a.Value("gust_prob").Float()
	env, err := airdrop.New(cfg, seed)
	if err != nil {
		return err
	}
	ap := airdrop.Autopilot{}
	res := rl.Evaluate(env, rl.PolicyFunc(ap.Act), 40)
	rec.Report("reward", res.MeanReturn)
	rec.Report("episode_cost", env.StepCost()*res.MeanLength)
	return nil
}
