// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations over the design choices DESIGN.md calls out
// (Runge-Kutta order, node scaling, vectorization width, exploratory
// method). The per-iteration work uses a micro training scale so the
// benchmarks measure harness cost, while the full-shape campaign is run by
// cmd/airdrop-study (see EXPERIMENTS.md for the recorded numbers).
package rldecide_test

import (
	"io"
	"sync"
	"testing"

	"rldecide/internal/airdrop"
	"rldecide/internal/core"
	"rldecide/internal/distrib"
	"rldecide/internal/experiments"
	"rldecide/internal/mathx"
	"rldecide/internal/nn"
	"rldecide/internal/obs"
	"rldecide/internal/param"
	"rldecide/internal/report"
	"rldecide/internal/search"
	"rldecide/internal/tensor"
)

// benchScale is a micro training budget for benchmark iterations.
func benchScale() experiments.Scale {
	s := experiments.QuickScale()
	s.TotalSteps = 1_000
	s.SACStartSteps = 300
	s.SACBatch = 32
	s.EvalEpisodes = 5
	s.RolloutSteps = 32
	return s
}

// BenchmarkTableI regenerates the full 18-configuration campaign of
// Table I (reward / computation time / power consumption per learning
// configuration) at micro scale.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Campaign(benchScale(), uint64(i)+1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.Outcomes(rep)) != 18 {
			b.Fatal("incomplete campaign")
		}
	}
}

// BenchmarkTableIInstrumented is the observability overhead gate: the
// same 18-configuration campaign as BenchmarkTableI, run with the obs
// event bus live (per-trial events + a JSONL tracer draining to
// io.Discard), the deployment shape of a tracing daemon. The delta
// against BenchmarkTableI is the whole cost of per-trial observability
// and must stay within benchgate's time tolerance with no added
// allocations on the training path.
func BenchmarkTableIInstrumented(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bus := obs.NewBus()
		tracer := obs.NewTracer(bus, io.Discard)
		study := experiments.NewTableIStudy(benchScale(), uint64(i)+1, 1)
		study.OnTrial = func(tr core.Trial) {
			bus.Publish(obs.Event{Kind: obs.KindTrialStart, Study: "bench", Trial: tr.ID})
			bus.Publish(obs.Event{Kind: obs.KindTrialDone, Study: "bench", Trial: tr.ID, Status: "ok"})
		}
		rep, err := study.Run(len(experiments.TableI()))
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.Outcomes(rep)) != 18 {
			b.Fatal("incomplete campaign")
		}
		_ = bus.Close()
		if err := tracer.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// campaignOnce memoizes one micro campaign for the figure benchmarks.
var campaignOnce = sync.OnceValues(func() (*core.Report, error) {
	return experiments.Campaign(benchScale(), 7, 1)
})

func benchFigure(b *testing.B, number int) {
	rep, err := campaignOnce()
	if err != nil {
		b.Fatal(err)
	}
	fig, err := experiments.FigureByNumber(number)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MeasuredFront(rep, fig, experiments.FrontEps); err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderFigure(io.Discard, rep, fig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the Reward-vs-Computation-Time Pareto front.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFigure5 regenerates the Power-vs-Computation-Time Pareto front.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFigure6 regenerates the Reward-vs-Power Pareto front.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6) }

// --- Ablations -----------------------------------------------------------

// benchTrain runs one micro training job.
func benchTrain(b *testing.B, sol experiments.Solution) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSolutionOnce(sol, benchScale(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRKOrder3/5/8 isolate the Runge-Kutta order, the paper's
// environment-side accuracy/cost knob (same framework, algo, deployment).
func BenchmarkAblationRKOrder3(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 3, Framework: distrib.StableBaselines, Algo: distrib.PPO, Nodes: 1, Cores: 4})
}

func BenchmarkAblationRKOrder5(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 5, Framework: distrib.StableBaselines, Algo: distrib.PPO, Nodes: 1, Cores: 4})
}

func BenchmarkAblationRKOrder8(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 8, Framework: distrib.StableBaselines, Algo: distrib.PPO, Nodes: 1, Cores: 4})
}

// BenchmarkAblationNodes1/2 isolate multi-node distribution (the paper's
// solutions 7 vs 8).
func BenchmarkAblationNodes1(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 8, Framework: distrib.RLlib, Algo: distrib.PPO, Nodes: 1, Cores: 4})
}

func BenchmarkAblationNodes2(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 8, Framework: distrib.RLlib, Algo: distrib.PPO, Nodes: 2, Cores: 4})
}

// BenchmarkAblationCores2/4 isolate vectorization width (solutions 10 vs
// 11).
func BenchmarkAblationCores2(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 3, Framework: distrib.TFAgents, Algo: distrib.PPO, Nodes: 1, Cores: 2})
}

func BenchmarkAblationCores4(b *testing.B) {
	benchTrain(b, experiments.Solution{RKOrder: 3, Framework: distrib.TFAgents, Algo: distrib.PPO, Nodes: 1, Cores: 4})
}

// BenchmarkExplorerRandom/Grid/TPE compare the exploratory methods' cost
// of proposing 100 configurations over the campaign space.
func benchExplorer(b *testing.B, mk func() search.Explorer) {
	space := experiments.Space()
	rng := mathx.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := mk()
		var hist []search.Observation
		for j := 0; j < 100; j++ {
			a, ok := ex.Next(rng, space, hist)
			if !ok {
				break
			}
			hist = append(hist, search.Observation{Assignment: a, Objective: float64(j % 7)})
		}
	}
}

func BenchmarkExplorerRandom(b *testing.B) {
	benchExplorer(b, func() search.Explorer { return search.RandomSearch{} })
}

func BenchmarkExplorerGrid(b *testing.B) {
	benchExplorer(b, func() search.Explorer { return &search.GridSearch{} })
}

func BenchmarkExplorerTPE(b *testing.B) {
	benchExplorer(b, func() search.Explorer { return search.TPE{} })
}

// BenchmarkEnvEpisode measures one full simulator episode under the
// scripted autopilot (the case study's raw compute).
func BenchmarkEnvEpisode(b *testing.B) {
	env := airdrop.MustNew(airdrop.NewConfig(), 1)
	ap := airdrop.Autopilot{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := env.Reset()
		for {
			res := env.Step(ap.Act(obs))
			obs = res.Obs
			if res.Done {
				break
			}
		}
	}
}

// BenchmarkNNForwardBackward measures one training pass of the policy
// network at campaign shapes (batch 32, obs 7 -> 64 -> 64 -> 3). The
// steady-state target is zero allocations per pass (see
// internal/nn/alloc_test.go for the hard regression gate).
func BenchmarkNNForwardBackward(b *testing.B) {
	rng := mathx.NewRand(1)
	m := nn.NewMLP(rng, []int{7, 64, 64, 3}, nn.Tanh{}, 0.01)
	x := tensor.New(32, 7)
	for i := range x.Data {
		x.Data[i] = rng.Float64() - 0.5
	}
	dout := tensor.New(32, 3)
	for i := range dout.Data {
		dout.Data[i] = rng.Float64() - 0.5
	}
	m.ZeroGrad()
	m.Forward(x)
	m.Backward(dout)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		m.Forward(x)
		m.Backward(dout)
	}
}

// BenchmarkReportTable measures rendering the campaign table.
func BenchmarkReportTable(b *testing.B) {
	rep, err := campaignOnce()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.Table(io.Discard, rep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyOverhead measures the methodology pipeline itself with a
// free objective (no training), isolating core/search/pareto costs.
func BenchmarkStudyOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		study := &core.Study{
			CaseStudy: core.CaseStudy{Name: "overhead"},
			Space:     experiments.Space(),
			Explorer:  search.RandomSearch{},
			Metrics:   experiments.Metrics(),
			Ranker:    core.ParetoRanker{},
			Objective: func(a param.Assignment, seed uint64, rec *core.Recorder) error {
				rec.Report(experiments.MetricReward, -float64(seed%100)/100)
				rec.Report(experiments.MetricTime, float64(seed%60)+40)
				rec.Report(experiments.MetricPower, float64(seed%200)+100)
				rec.Report(experiments.MetricUtil, 0.9)
				return nil
			},
			Seed: uint64(i) + 1,
		}
		if _, err := study.Run(50); err != nil {
			b.Fatal(err)
		}
	}
}
