module rldecide

go 1.24
