// Package rldecide reproduces "A Methodology to Build Decision Analysis
// Tools Applied to Distributed Reinforcement Learning" (Prigent, Cudennec,
// Costan, Antoniu — ScaDL/IPDPS-W 2022): a five-stage methodology for
// choosing, before implementation, among distributed-RL frameworks,
// learning algorithms and deployment configurations under antagonist
// objectives (reward, computation time, power consumption).
//
// The repository contains the methodology core (internal/core, with
// parameter spaces, exploratory methods and Pareto ranking) and every
// substrate the paper's campaign needs, built from scratch: a gym-style
// environment layer, the airdrop package delivery simulator with
// Runge-Kutta canopy dynamics, a neural-network/PPO/SAC stack, three
// distributed-training backends in the architectural styles of Ray RLlib,
// Stable Baselines and TF-Agents, and a virtual-time cluster simulator
// with a CPU power model standing in for the paper's 2-node testbed.
//
// Start with README.md, examples/quickstart, and cmd/airdrop-study.
package rldecide
